package codepatch_test

import (
	"errors"
	"testing"

	"edb/internal/analysis"
	"edb/internal/arch"
	"edb/internal/core/codepatch"
	"edb/internal/core/wms"
	"edb/internal/minic"
	"edb/internal/progs"
)

const repatchSrc = `
int a = 1;
int b = 2;
int tab[8];

int bump(int i, int v) {
	tab[i & 3] = v;
	a = a + v;
	a = a + 1;
	return a;
}

int main() {
	int k;
	for (k = 0; k < 6; k = k + 1) {
		b = bump(k, k + 10);
	}
	print(a);
	print(b);
	return 0;
}
`

// buildEngine builds a live Image over repatchSrc with the given
// options, recording notifications.
func buildEngine(t *testing.T, opt codepatch.PatchOptions) (*codepatch.Image, *[]wms.Notification) {
	t.Helper()
	prog, err := minic.Compile(repatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	var notifs []wms.Notification
	img, err := codepatch.BuildImage(prog, opt, arch.PageSize4K, func(n wms.Notification) {
		notifs = append(notifs, n)
	})
	if err != nil {
		t.Fatal(err)
	}
	return img, &notifs
}

func TestBuildImageDeliversNotifications(t *testing.T) {
	img, notifs := buildEngine(t, codepatch.PatchOptions{Optimize: true})
	r, ok := img.M.Image.Data["a"]
	if !ok {
		t.Fatal("no data symbol a")
	}
	if err := img.InstallMonitor(r.BA, r.EA); err != nil {
		t.Fatal(err)
	}
	if err := img.M.Run(diffFuel); err != nil {
		t.Fatal(err)
	}
	// main's loop runs bump 6 times; each bump writes a twice.
	if got := len(*notifs); got != 12 {
		t.Fatalf("got %d notifications for writes to a, want 12", got)
	}
	if img.Stats.Installs != 1 {
		t.Fatalf("Installs = %d, want 1", img.Stats.Installs)
	}
	if vs := img.Verify(); len(vs) != 0 {
		t.Fatalf("fresh image fails verification: %v", vs[0])
	}
}

func TestBuildImageRejectsDoublePatch(t *testing.T) {
	prog, err := minic.Compile(repatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codepatch.PatchWithOptions(prog, codepatch.PatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := codepatch.BuildImage(prog, codepatch.PatchOptions{}, arch.PageSize4K, nil); err == nil {
		t.Fatal("BuildImage accepted an already-patched program")
	}
}

func TestRewriteStoreErrors(t *testing.T) {
	img, _ := buildEngine(t, codepatch.PatchOptions{Optimize: true})
	if err := img.RewriteStore("no_such_fn", 0, 4); !errors.Is(err, codepatch.ErrNoSuchStore) {
		t.Fatalf("unknown function: got %v, want ErrNoSuchStore", err)
	}
	if err := img.RewriteStore("bump", 99, 4); !errors.Is(err, codepatch.ErrNoSuchStore) {
		t.Fatalf("bad ordinal: got %v, want ErrNoSuchStore", err)
	}
	if err := img.RewriteStore("bump", 2, 1<<20); !errors.Is(err, codepatch.ErrImmOverflow) {
		t.Fatalf("huge delta: got %v, want ErrImmOverflow", err)
	}
	if img.Stats.Rewrites != 0 {
		t.Fatalf("failed rewrites were counted: %d", img.Stats.Rewrites)
	}
}

// TestRewriteStoreDemotes: rewriting a store in bump invalidates the
// optimizer decisions that depend on bump; the working map shrinks, the
// demoted set grows, and the image still proves sound.
func TestRewriteStoreDemotes(t *testing.T) {
	img, _ := buildEngine(t, codepatch.PatchOptions{Optimize: true})
	before := 0
	if img.DepMap() != nil {
		before = len(img.DepMap().Sites)
	}
	if before == 0 {
		t.Fatal("workload produced no optimized sites; the test measures nothing")
	}
	// bump's pair `a = a + v; a = a + 1` gives the interproc planner an
	// elision; rewriting the tab store (ordinal 2, after the two
	// parameter spills) must demote it rather than leave a stale proof.
	if err := img.RewriteStore("bump", 2, 4); err != nil {
		t.Fatal(err)
	}
	after := len(img.DepMap().Sites)
	if after >= before {
		t.Errorf("dependence map did not shrink: %d -> %d sites", before, after)
	}
	if img.Stats.Demoted == 0 {
		t.Error("no sites demoted by a rewrite in the elision's function")
	}
	if len(img.Demoted()) != img.Stats.Demoted {
		t.Errorf("demoted set size %d != Stats.Demoted %d", len(img.Demoted()), img.Stats.Demoted)
	}
	if vs := img.Verify(); len(vs) != 0 {
		t.Fatalf("post-rewrite image fails verification: %v", vs[0])
	}
	// The machine still runs to completion after the live-text edit.
	if err := img.M.Run(diffFuel); err != nil {
		t.Fatal(err)
	}
}

// TestRewriteStoreUnoptimized: without a dependence map there is
// nothing to demote, but the lockstep pair rewrite and re-verification
// still apply.
func TestRewriteStoreUnoptimized(t *testing.T) {
	img, _ := buildEngine(t, codepatch.PatchOptions{})
	if img.DepMap() != nil {
		t.Fatal("unoptimized image should have no dependence map")
	}
	if err := img.RewriteStore("bump", 2, 4); err != nil {
		t.Fatal(err)
	}
	if img.Stats.WordsRewritten != 2 {
		t.Fatalf("WordsRewritten = %d, want 2 (store + pair)", img.Stats.WordsRewritten)
	}
	if vs := img.Verify(); len(vs) != 0 {
		t.Fatalf("post-rewrite image fails verification: %v", vs[0])
	}
	if err := img.M.Run(diffFuel); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyRepatchedRejectsAbuse: the demoted set cannot be used to
// wave through a site that is not an elided store.
func TestVerifyRepatchedRejectsAbuse(t *testing.T) {
	prog, err := minic.Compile(repatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := codepatch.PatchWithOptions(prog, codepatch.PatchOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	demoted := map[analysis.SiteRef]bool{{Func: "bump", Index: 0}: true}
	if vs := analysis.VerifyRepatched(prog, res.DepMap, demoted); len(vs) == 0 {
		t.Fatal("demoting a non-elided site was not flagged")
	}
}

const loopSrc = `
int g = 0;
int tab[8];
int n = 12;

int churn() {
	int i;
	for (i = 0; i < n; i = i + 1) {
		g = g + i;
	}
	tab[1] = g;
	return g;
}

int main() {
	print(churn());
	return 0;
}
`

// TestRewriteFlipsFastSites: churn's in-loop store of g is covered by a
// hoisted preliminary check, so its check call uses the fast stub
// entry. Rewriting another store in the same function invalidates that
// coverage; the engine must flip the fast call to the full entry in the
// live text and drop the hoist from the working map.
func TestRewriteFlipsFastSites(t *testing.T) {
	prog, err := minic.Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	img, err := codepatch.BuildImage(prog, codepatch.PatchOptions{Optimize: true}, arch.PageSize4K, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.Res.FastChecks == 0 || img.Res.HoistedChecks == 0 {
		t.Fatalf("workload produced no fast/hoisted checks (fast=%d hoist=%d); the test measures nothing",
			img.Res.FastChecks, img.Res.HoistedChecks)
	}
	// churn's non-implicit stores: 0 = the in-loop g store, 1 = tab[1].
	// Rewrite the tab store; the fast-checked g store depends on churn.
	if err := img.RewriteStore("churn", 1, 4); err != nil {
		t.Fatal(err)
	}
	if img.Stats.StubFlips == 0 {
		t.Error("no fast-stub calls were flipped to the full entry")
	}
	if img.Stats.HoistsDropped == 0 {
		t.Error("no hoist sites were dropped from the working map")
	}
	if vs := img.Verify(); len(vs) != 0 {
		t.Fatalf("post-flip image fails verification: %v", vs[0])
	}
	if err := img.M.Run(diffFuel); err != nil {
		t.Fatal(err)
	}
	// With every fast call flipped, the run must take zero fast hits.
	if img.W.FastHits != 0 {
		t.Errorf("flipped image still took %d fast hits", img.W.FastHits)
	}
}

// TestRewriteElidedStore: an elided store has no check pair; the
// rewrite touches exactly one word and the (demoted) image still
// verifies.
func TestRewriteElidedStore(t *testing.T) {
	img, _ := buildEngine(t, codepatch.PatchOptions{Optimize: true})
	if img.Res.EliminatedChecks == 0 {
		t.Fatal("no elided checks; the test measures nothing")
	}
	// bump's ordinal-4 store (`a = a + 1`) is elided: the ordinal-3
	// store of the same address dominates it.
	if err := img.RewriteStore("bump", 4, 4); err != nil {
		t.Fatal(err)
	}
	if img.Stats.WordsRewritten != 1 {
		t.Fatalf("WordsRewritten = %d, want 1 (no pair to rewrite)", img.Stats.WordsRewritten)
	}
	if vs := img.Verify(); len(vs) != 0 {
		t.Fatalf("post-rewrite image fails verification: %v", vs[0])
	}
	if err := img.M.Run(diffFuel); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorRangeErrors(t *testing.T) {
	img, _ := buildEngine(t, codepatch.PatchOptions{Optimize: true})
	if err := img.InstallMonitor(16, 16); err == nil {
		t.Error("empty install range accepted")
	}
	if err := img.RemoveMonitor(20, 16); err == nil {
		t.Error("empty remove range accepted")
	}
	if img.Stats.Installs != 0 || img.Stats.Removes != 0 {
		t.Errorf("failed updates were counted: %+v", img.Stats)
	}
}

func TestExpansionAccounting(t *testing.T) {
	if (&codepatch.PatchResult{}).Expansion() != 0 {
		t.Error("zero-word result must report zero expansion")
	}
	img, _ := buildEngine(t, codepatch.PatchOptions{Optimize: true})
	if e := img.Res.Expansion(); e <= 0 {
		t.Errorf("patched image reports non-positive expansion %v", e)
	}
}

// TestSMCScheduleInBounds pins the workload contract the fuzz decoder
// and the storm tests rely on: the shipped schedule's running offset
// delta stays within [0, 24] bytes at slot granularity.
func TestSMCScheduleInBounds(t *testing.T) {
	for _, scale := range []int{1, 3} {
		cum := int32(0)
		for i, rw := range progs.SMCRewrites(scale) {
			if rw.Func != "handler" || rw.Ordinal != 2 {
				t.Fatalf("step %d targets %s@%d, want handler@2", i, rw.Func, rw.Ordinal)
			}
			if rw.DeltaOff%4 != 0 {
				t.Fatalf("step %d delta %d not slot-granular", i, rw.DeltaOff)
			}
			cum += rw.DeltaOff
			if cum < 0 || cum > 24 {
				t.Fatalf("step %d cumulative delta %d outside [0, 24]", i, cum)
			}
			if i > 0 && rw.AfterStores <= progs.SMCRewrites(scale)[i-1].AfterStores {
				t.Fatalf("step %d threshold not increasing", i)
			}
		}
	}
}
