package codepatch_test

import (
	"math/rand"
	"sort"
	"testing"

	"edb/internal/analysis"
	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/core/codepatch"
	"edb/internal/core/wms"
	"edb/internal/kernel"
	"edb/internal/minic"
	"edb/internal/progs"
)

// The optimized patcher's contract is semantic identity: for the same
// source, the same input, and the same monitor activity, an optimized
// image must deliver *exactly* the notification sequence of an
// unoptimized one, print the same output, and keep the paper's shared
// counters (Figure 2) identical. These tests check that differentially
// on randomly generated mini-C programs and on all five benchmark
// workloads, with and without mid-run monitor updates.
//
// Notifications are compared as (BA, EA, store ordinal): the program
// counter necessarily differs between the two images (the optimized one
// inserts fewer instructions), but the sequence of *executed stores* is
// identical in program order — check calls are not stores — so
// CPU.Stores at notification time identifies the store precisely.

// notif is one observed notification, position-stamped by the number of
// executed stores at delivery time.
type notif struct {
	BA, EA arch.Addr
	Store  uint64
}

// machineUnderTest bundles one patched machine with its WMS and the
// notification log.
type machineUnderTest struct {
	m      *kernel.Machine
	w      *codepatch.WMS
	res    *codepatch.PatchResult
	notifs []notif
}

// Patch variants under differential test: the unoptimized patch, the
// intraprocedural optimizer (PR 2 baseline), and the interprocedural
// optimizer (call-graph + summary driven).
var patchVariants = []struct {
	name string
	opt  codepatch.PatchOptions
}{
	{"unopt", codepatch.PatchOptions{}},
	{"intra", codepatch.PatchOptions{Optimize: true, Intraproc: true}},
	{"inter", codepatch.PatchOptions{Optimize: true}},
}

// build compiles src, patches it with the given options, and attaches a
// recording CodePatch WMS.
func build(t *testing.T, src string, opt codepatch.PatchOptions) *machineUnderTest {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := codepatch.PatchWithOptions(prog, opt)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if vs := analysis.VerifyPatchedWithDeps(prog, res.DepMap); len(vs) != 0 {
		t.Fatalf("patched image does not verify: %v", vs[0])
	}
	img, err := asm.Assemble(prog)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	mut := &machineUnderTest{m: m, res: res}
	mut.w, err = codepatch.Attach(m, func(n wms.Notification) {
		mut.notifs = append(mut.notifs, notif{BA: n.BA, EA: n.EA, Store: m.CPU.Stores})
	})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	return mut
}

// monitorRanges picks a deterministic set of monitor ranges from the
// image's data symbols: the first symbol in name order is fully
// monitored, the second only its first word. Both images are built from
// the same source, so their data layouts are identical.
func monitorRanges(m *kernel.Machine) []arch.Range {
	syms := make([]string, 0, len(m.Image.Data))
	for s := range m.Image.Data {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	var rs []arch.Range
	if len(syms) > 0 {
		rs = append(rs, m.Image.Data[syms[0]])
	}
	if len(syms) > 1 {
		r := m.Image.Data[syms[1]]
		rs = append(rs, arch.Range{BA: r.BA, EA: r.BA + arch.WordBytes})
	}
	return rs
}

// compare asserts the two runs are observationally identical and that
// the static accounting invariant holds.
func compare(t *testing.T, unopt, opt *machineUnderTest) {
	t.Helper()
	if got, want := opt.m.Out.String(), unopt.m.Out.String(); got != want {
		t.Errorf("program output diverged:\nopt:   %q\nunopt: %q", got, want)
	}
	if got, want := opt.m.CPU.Stores, unopt.m.CPU.Stores; got != want {
		t.Errorf("executed stores diverged: opt %d, unopt %d", got, want)
	}
	if len(opt.notifs) != len(unopt.notifs) {
		t.Fatalf("notification count diverged: opt %d, unopt %d\nopt:   %v\nunopt: %v",
			len(opt.notifs), len(unopt.notifs), opt.notifs, unopt.notifs)
	}
	for i := range unopt.notifs {
		if opt.notifs[i] != unopt.notifs[i] {
			t.Fatalf("notification %d diverged: opt %+v, unopt %+v",
				i, opt.notifs[i], unopt.notifs[i])
		}
	}
	if got, want := opt.w.Stats(), unopt.w.Stats(); got != want {
		t.Errorf("WMS stats diverged: opt %+v, unopt %+v", got, want)
	}
	// The accounting invariant: every store the unoptimized patch
	// checks is, in the optimized image, either still checked or
	// statically elided — nothing falls through the cracks.
	if unopt.w.Checks != opt.w.Checks+opt.w.Elided {
		t.Errorf("check accounting broken: unopt.Checks=%d, opt.Checks=%d + opt.Elided=%d",
			unopt.w.Checks, opt.w.Checks, opt.w.Elided)
	}
}

const diffFuel = 20_000_000

// TestDifferentialRandomPrograms: generated programs, monitors
// installed before the run and never touched again. In this regime
// every statically elided check must be proven redundant at run time —
// ElideFallbacks must be exactly zero, which is the strongest check we
// have that the dataflow facts are actually true of the execution.
func TestDifferentialRandomPrograms(t *testing.T) {
	const seeds = 30
	for seed := int64(0); seed < seeds; seed++ {
		src := minic.GenProgram(rand.New(rand.NewSource(seed)))
		muts := make([]*machineUnderTest, len(patchVariants))
		for vi, v := range patchVariants {
			mut := build(t, src, v.opt)
			for _, r := range monitorRanges(mut.m) {
				if err := mut.w.InstallMonitor(r.BA, r.EA); err != nil {
					t.Fatal(err)
				}
			}
			if err := mut.m.Run(diffFuel); err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, v.name, err, src)
			}
			muts[vi] = mut
		}
		unopt, intra, inter := muts[0], muts[1], muts[2]
		compare(t, unopt, intra)
		compare(t, unopt, inter)
		for vi, opt := range []*machineUnderTest{intra, inter} {
			if opt.w.ElideFallbacks != 0 {
				t.Errorf("seed %d %s: %d elide fallbacks without mid-run updates (analysis fact was invalidated)\n%s",
					seed, patchVariants[vi+1].name, opt.w.ElideFallbacks, src)
			}
		}
		if inter.res.EliminatedChecks < intra.res.EliminatedChecks {
			t.Errorf("seed %d: interproc elides %d < intraproc %d",
				seed, inter.res.EliminatedChecks, intra.res.EliminatedChecks)
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged; source:\n%s", seed, src)
		}
	}
}

// monitorEvent is one scripted mid-run update, applied once the
// machine's executed-store count reaches After. Store counts advance
// identically in both images, so the script perturbs both runs at the
// same point in the store stream.
type monitorEvent struct {
	After   uint64
	Install bool
	R       arch.Range
}

// runScripted single-steps the machine, applying script events as their
// store thresholds are crossed.
func runScripted(t *testing.T, mut *machineUnderTest, script []monitorEvent) {
	t.Helper()
	si := 0
	for steps := 0; !mut.m.CPU.Halted; steps++ {
		if steps > diffFuel {
			t.Fatal("scripted run exhausted fuel")
		}
		for si < len(script) && mut.m.CPU.Stores >= script[si].After {
			ev := script[si]
			si++
			var err error
			if ev.Install {
				err = mut.w.InstallMonitor(ev.R.BA, ev.R.EA)
			} else {
				err = mut.w.RemoveMonitor(ev.R.BA, ev.R.EA)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := mut.m.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialInterleavedMonitors: monitors are installed and
// removed *during* the run. Mid-run updates invalidate the optimizer's
// static facts, so elided stores may fall back to full lookups — the
// point of the test is that the notification sequence, output, and
// shared counters stay identical anyway.
func TestDifferentialInterleavedMonitors(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		src := minic.GenProgram(rand.New(rand.NewSource(seed)))
		unopt := build(t, src, patchVariants[0].opt)
		intra := build(t, src, patchVariants[1].opt)
		inter := build(t, src, patchVariants[2].opt)

		rs := monitorRanges(unopt.m)
		if len(rs) < 2 {
			t.Fatal("generated program must have at least two data symbols")
		}
		all := arch.Range{BA: rs[0].BA, EA: unopt.m.Image.GlobalEnd}
		script := []monitorEvent{
			{After: 0, Install: true, R: rs[0]},
			{After: 5, Install: true, R: rs[1]},
			{After: 20, Install: false, R: rs[0]},
			{After: 40, Install: true, R: all},
			{After: 90, Install: false, R: all},
			{After: 120, Install: true, R: rs[0]},
		}
		runScripted(t, unopt, script)
		runScripted(t, intra, script)
		runScripted(t, inter, script)
		compare(t, unopt, intra)
		compare(t, unopt, inter)
		if t.Failed() {
			t.Fatalf("seed %d diverged; source:\n%s", seed, src)
		}
	}
}

// ---------------------------------------------------------------------
// Re-patch-storm differential.
//
// The incremental engine's contract is invariance to the invalidation
// policy: a run whose monitor set (and, for the self-modifying
// workload, whose text) churns under the incremental policy must be
// bit-identical — output, executed stores, notification sequence,
// monitor statistics, check and elision counters — to the same run
// under the full-flush policy. The full flush IS the from-scratch
// re-patch: patching is deterministic given the source (asserted by
// TestRepatchDeterministic), static decisions do not depend on the
// monitor set, and a freshly attached WMS starts with exactly the empty
// fact tables a full flush leaves behind. The two policies may differ
// only in what the dropped-fact fallbacks cost: the incremental run can
// keep facts the flush discards, so it may take fewer elide fallbacks
// and more fast hits, never more/fewer checks.

// repatchOp is one scripted engine action, applied once the executed-
// store count reaches After.
type repatchOp struct {
	After   uint64
	Kind    byte // 'i' install, 'r' remove, 'w' rewrite
	R       arch.Range
	Func    string
	Ordinal int
	Delta   int32
}

// stormRun is one machine under a re-patch storm: the engine wrapping
// it and the observed notifications.
type stormRun struct {
	*machineUnderTest
	img *codepatch.Image
}

// buildStorm is build() plus the incremental engine wrapper.
func buildStorm(t *testing.T, src string, opt codepatch.PatchOptions, incremental bool) *stormRun {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := codepatch.PatchWithOptions(prog, opt)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if vs := analysis.VerifyPatchedWithDeps(prog, res.DepMap); len(vs) != 0 {
		t.Fatalf("patched image does not verify: %v", vs[0])
	}
	img, err := asm.Assemble(prog)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	mut := &machineUnderTest{m: m, res: res}
	mut.w, err = codepatch.Attach(m, func(n wms.Notification) {
		mut.notifs = append(mut.notifs, notif{BA: n.BA, EA: n.EA, Store: m.CPU.Stores})
	})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	mut.w.SetIncremental(incremental)
	return &stormRun{machineUnderTest: mut, img: codepatch.NewImage(prog, res, m, mut.w)}
}

// runStorm single-steps until every scripted op has fired, then lets
// the machine free-run to completion. Op thresholds are store counts,
// which advance identically in every run of the same program, so the
// storm perturbs each run at the same point in the store stream.
func runStorm(t *testing.T, sr *stormRun, script []repatchOp, fuel uint64) {
	t.Helper()
	si := 0
	for steps := uint64(0); !sr.m.CPU.Halted && si < len(script); steps++ {
		if steps > fuel {
			t.Fatal("storm run exhausted fuel during scripted window")
		}
		for si < len(script) && sr.m.CPU.Stores >= script[si].After {
			op := script[si]
			si++
			var err error
			switch op.Kind {
			case 'i':
				err = sr.img.InstallMonitor(op.R.BA, op.R.EA)
			case 'r':
				err = sr.img.RemoveMonitor(op.R.BA, op.R.EA)
			case 'w':
				err = sr.img.RewriteStore(op.Func, op.Ordinal, op.Delta)
			default:
				t.Fatalf("bad op kind %q", op.Kind)
			}
			if err != nil {
				t.Fatalf("storm op %c at store %d: %v", op.Kind, op.After, err)
			}
		}
		if sr.m.CPU.Halted {
			break
		}
		if err := sr.m.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !sr.m.CPU.Halted {
		if err := sr.m.Run(fuel); err != nil {
			t.Fatalf("storm free-run: %v", err)
		}
	}
}

// compareStorm asserts policy invariance between a full-flush run and
// an incremental run of the same variant, including the one-sided
// fallback-accounting bounds.
func compareStorm(t *testing.T, full, incr *stormRun) {
	t.Helper()
	if got, want := incr.m.Out.String(), full.m.Out.String(); got != want {
		t.Errorf("output diverged across invalidation policies:\nincr: %q\nfull: %q", got, want)
	}
	if got, want := incr.m.CPU.Stores, full.m.CPU.Stores; got != want {
		t.Errorf("executed stores diverged: incr %d, full %d", got, want)
	}
	if len(incr.notifs) != len(full.notifs) {
		t.Fatalf("notification count diverged: incr %d, full %d", len(incr.notifs), len(full.notifs))
	}
	for i := range full.notifs {
		if incr.notifs[i] != full.notifs[i] {
			t.Fatalf("notification %d diverged: incr %+v, full %+v", i, incr.notifs[i], full.notifs[i])
		}
	}
	if got, want := incr.w.Stats(), full.w.Stats(); got != want {
		t.Errorf("WMS stats diverged: incr %+v, full %+v", got, want)
	}
	if incr.w.Checks != full.w.Checks || incr.w.Elided != full.w.Elided || incr.w.PreChecks != full.w.PreChecks {
		t.Errorf("check counters diverged: incr (C=%d E=%d P=%d), full (C=%d E=%d P=%d)",
			incr.w.Checks, incr.w.Elided, incr.w.PreChecks,
			full.w.Checks, full.w.Elided, full.w.PreChecks)
	}
	// The whole point of keeping facts: the incremental run never pays
	// MORE fallbacks than the flush-everything run, and never answers
	// fewer checks out of the miss cache.
	if incr.w.ElideFallbacks > full.w.ElideFallbacks {
		t.Errorf("incremental pays more elide fallbacks (%d) than full flush (%d)",
			incr.w.ElideFallbacks, full.w.ElideFallbacks)
	}
	if incr.w.FastHits < full.w.FastHits {
		t.Errorf("incremental takes fewer fast hits (%d) than full flush (%d)",
			incr.w.FastHits, full.w.FastHits)
	}
	if incr.img.Stats.Installs != full.img.Stats.Installs ||
		incr.img.Stats.Removes != full.img.Stats.Removes ||
		incr.img.Stats.Rewrites != full.img.Stats.Rewrites {
		t.Errorf("engine op counts diverged: incr %+v, full %+v", incr.img.Stats, full.img.Stats)
	}
}

// genStormScript builds a random interleaved install/remove script over
// the image's data symbols. Thresholds are strictly increasing so the
// script replays identically from the store stream.
func genStormScript(rng *rand.Rand, m *kernel.Machine, ops int) []repatchOp {
	syms := make([]string, 0, len(m.Image.Data))
	for s := range m.Image.Data {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	pool := make([]arch.Range, 0, len(syms)+1)
	for _, s := range syms {
		pool = append(pool, m.Image.Data[s])
	}
	if len(pool) == 0 {
		return nil
	}
	pool = append(pool, arch.Range{BA: pool[0].BA, EA: m.Image.GlobalEnd})
	var script []repatchOp
	after := uint64(0)
	for k := 0; k < ops; k++ {
		after += uint64(rng.Intn(30))
		r := pool[rng.Intn(len(pool))]
		if rng.Intn(4) == 0 { // sometimes monitor a single word
			r = arch.Range{BA: r.BA, EA: r.BA + arch.WordBytes}
		}
		kind := byte('i')
		if rng.Intn(2) == 0 {
			kind = 'r'
		}
		script = append(script, repatchOp{After: after, Kind: kind, R: r})
	}
	return script
}

// TestRepatchDeterministic pins the from-scratch-oracle argument:
// patching the same source twice yields bit-identical text images, so
// "flush every runtime fact" and "throw the image away and re-patch
// from scratch" are the same machine state.
func TestRepatchDeterministic(t *testing.T) {
	src := progs.SMC(1).Source
	for _, v := range patchVariants {
		a := build(t, src, v.opt)
		b := build(t, src, v.opt)
		ta, tb := a.m.Image.Text, b.m.Image.Text
		if len(ta) != len(tb) {
			t.Fatalf("%s: re-patch changed text size: %d vs %d words", v.name, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("%s: re-patch text differs at word %d: %#x vs %#x", v.name, i, ta[i], tb[i])
			}
		}
	}
}

// TestRepatchStormRandomPrograms: generated programs under random
// interleaved install/remove storms, every optimization tier, the
// incremental policy differentially pinned to the full-flush oracle.
func TestRepatchStormRandomPrograms(t *testing.T) {
	const seeds = 14
	keptSomewhere := false
	for seed := int64(0); seed < seeds; seed++ {
		src := minic.GenProgram(rand.New(rand.NewSource(200 + seed)))
		for _, v := range patchVariants {
			full := buildStorm(t, src, v.opt, false)
			incr := buildStorm(t, src, v.opt, true)
			script := genStormScript(rand.New(rand.NewSource(9000+seed)), full.m, 12)
			runStorm(t, full, script, diffFuel)
			runStorm(t, incr, script, diffFuel)
			compareStorm(t, full, incr)
			if incr.w.FactsKept > 0 {
				keptSomewhere = true
			}
			if full.w.FactsDropped != 0 || full.w.FactsKept != 0 {
				t.Errorf("full-flush run counted incremental facts: dropped=%d kept=%d",
					full.w.FactsDropped, full.w.FactsKept)
			}
			if t.Failed() {
				t.Fatalf("seed %d %s diverged; source:\n%s", seed, v.name, src)
			}
		}
	}
	if !keptSomewhere {
		t.Error("incremental policy never kept a fact across any storm — selective invalidation is not engaging")
	}
}

// TestRepatchStormWorkloads: the five paper workloads plus the
// self-modifying workload under monitor storms; smc additionally
// applies its SMCRewrites self-modification schedule through
// Image.RewriteStore, mid-run, in both policies.
func TestRepatchStormWorkloads(t *testing.T) {
	names := append(progs.Names(), "smc")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := progs.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range patchVariants {
				full := buildStorm(t, p.Source, v.opt, false)
				incr := buildStorm(t, p.Source, v.opt, true)
				script := genStormScript(rand.New(rand.NewSource(77)), full.m, 10)
				if name == "smc" {
					for _, rw := range progs.SMCRewrites(1) {
						script = append(script, repatchOp{
							After: rw.AfterStores, Kind: 'w',
							Func: rw.Func, Ordinal: rw.Ordinal, Delta: rw.DeltaOff,
						})
					}
					sort.Slice(script, func(i, j int) bool { return script[i].After < script[j].After })
				}
				runStorm(t, full, script, p.Fuel)
				runStorm(t, incr, script, p.Fuel)
				compareStorm(t, full, incr)
				// After the storm the engine must still prove itself
				// sound under its surviving dependence map.
				for _, sr := range []*stormRun{full, incr} {
					if vs := sr.img.Verify(); len(vs) != 0 {
						t.Errorf("%s: post-storm image fails re-verification: %v", v.name, vs[0])
					}
				}
				if name == "smc" && v.opt.Optimize {
					if incr.img.Stats.Rewrites != len(progs.SMCRewrites(1)) {
						t.Errorf("%s: applied %d rewrites, want %d",
							v.name, incr.img.Stats.Rewrites, len(progs.SMCRewrites(1)))
					}
				}
				if t.Failed() {
					t.Fatalf("%s/%s diverged", name, v.name)
				}
			}
		})
	}
}

// TestDifferentialWorkloads runs the full differential comparison over
// the five paper benchmark workloads with pre-installed monitors.
func TestDifferentialWorkloads(t *testing.T) {
	for _, name := range progs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := progs.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			const workloadFuel = 400_000_000
			muts := make([]*machineUnderTest, len(patchVariants))
			for vi, v := range patchVariants {
				mut := build(t, p.Source, v.opt)
				for _, r := range monitorRanges(mut.m) {
					if err := mut.w.InstallMonitor(r.BA, r.EA); err != nil {
						t.Fatal(err)
					}
				}
				if err := mut.m.Run(workloadFuel); err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				muts[vi] = mut
			}
			unopt, intra, inter := muts[0], muts[1], muts[2]
			compare(t, unopt, intra)
			compare(t, unopt, inter)
			for vi, opt := range []*machineUnderTest{intra, inter} {
				if opt.w.ElideFallbacks != 0 {
					t.Errorf("%s: %d elide fallbacks without mid-run updates",
						patchVariants[vi+1].name, opt.w.ElideFallbacks)
				}
				// The optimizer must actually optimize something on real
				// workloads, or the ablation measures nothing.
				if opt.res.EliminatedChecks+opt.res.FastChecks == 0 {
					t.Errorf("%s optimizer had no effect on this workload", patchVariants[vi+1].name)
				}
			}
			// The acceptance criterion: interprocedural analysis never
			// elides fewer checks than the intraprocedural baseline, and
			// a dependence map ships with every interproc patch.
			if inter.res.EliminatedChecks < intra.res.EliminatedChecks {
				t.Errorf("interproc elides %d < intraproc %d",
					inter.res.EliminatedChecks, intra.res.EliminatedChecks)
			}
			if inter.res.EliminatedIntra != intra.res.EliminatedChecks {
				t.Errorf("EliminatedIntra = %d, want %d",
					inter.res.EliminatedIntra, intra.res.EliminatedChecks)
			}
			if inter.res.DepMap == nil || len(inter.res.DepMap.Sites) == 0 {
				t.Error("interproc patch must ship a dependence map")
			}
		})
	}
}
