package codepatch_test

import (
	"math/rand"
	"sort"
	"testing"

	"edb/internal/analysis"
	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/core/codepatch"
	"edb/internal/core/wms"
	"edb/internal/kernel"
	"edb/internal/minic"
	"edb/internal/progs"
)

// The optimized patcher's contract is semantic identity: for the same
// source, the same input, and the same monitor activity, an optimized
// image must deliver *exactly* the notification sequence of an
// unoptimized one, print the same output, and keep the paper's shared
// counters (Figure 2) identical. These tests check that differentially
// on randomly generated mini-C programs and on all five benchmark
// workloads, with and without mid-run monitor updates.
//
// Notifications are compared as (BA, EA, store ordinal): the program
// counter necessarily differs between the two images (the optimized one
// inserts fewer instructions), but the sequence of *executed stores* is
// identical in program order — check calls are not stores — so
// CPU.Stores at notification time identifies the store precisely.

// notif is one observed notification, position-stamped by the number of
// executed stores at delivery time.
type notif struct {
	BA, EA arch.Addr
	Store  uint64
}

// machineUnderTest bundles one patched machine with its WMS and the
// notification log.
type machineUnderTest struct {
	m      *kernel.Machine
	w      *codepatch.WMS
	res    *codepatch.PatchResult
	notifs []notif
}

// Patch variants under differential test: the unoptimized patch, the
// intraprocedural optimizer (PR 2 baseline), and the interprocedural
// optimizer (call-graph + summary driven).
var patchVariants = []struct {
	name string
	opt  codepatch.PatchOptions
}{
	{"unopt", codepatch.PatchOptions{}},
	{"intra", codepatch.PatchOptions{Optimize: true, Intraproc: true}},
	{"inter", codepatch.PatchOptions{Optimize: true}},
}

// build compiles src, patches it with the given options, and attaches a
// recording CodePatch WMS.
func build(t *testing.T, src string, opt codepatch.PatchOptions) *machineUnderTest {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := codepatch.PatchWithOptions(prog, opt)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if vs := analysis.VerifyPatchedWithDeps(prog, res.DepMap); len(vs) != 0 {
		t.Fatalf("patched image does not verify: %v", vs[0])
	}
	img, err := asm.Assemble(prog)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	mut := &machineUnderTest{m: m, res: res}
	mut.w, err = codepatch.Attach(m, func(n wms.Notification) {
		mut.notifs = append(mut.notifs, notif{BA: n.BA, EA: n.EA, Store: m.CPU.Stores})
	})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	return mut
}

// monitorRanges picks a deterministic set of monitor ranges from the
// image's data symbols: the first symbol in name order is fully
// monitored, the second only its first word. Both images are built from
// the same source, so their data layouts are identical.
func monitorRanges(m *kernel.Machine) []arch.Range {
	syms := make([]string, 0, len(m.Image.Data))
	for s := range m.Image.Data {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	var rs []arch.Range
	if len(syms) > 0 {
		rs = append(rs, m.Image.Data[syms[0]])
	}
	if len(syms) > 1 {
		r := m.Image.Data[syms[1]]
		rs = append(rs, arch.Range{BA: r.BA, EA: r.BA + arch.WordBytes})
	}
	return rs
}

// compare asserts the two runs are observationally identical and that
// the static accounting invariant holds.
func compare(t *testing.T, unopt, opt *machineUnderTest) {
	t.Helper()
	if got, want := opt.m.Out.String(), unopt.m.Out.String(); got != want {
		t.Errorf("program output diverged:\nopt:   %q\nunopt: %q", got, want)
	}
	if got, want := opt.m.CPU.Stores, unopt.m.CPU.Stores; got != want {
		t.Errorf("executed stores diverged: opt %d, unopt %d", got, want)
	}
	if len(opt.notifs) != len(unopt.notifs) {
		t.Fatalf("notification count diverged: opt %d, unopt %d\nopt:   %v\nunopt: %v",
			len(opt.notifs), len(unopt.notifs), opt.notifs, unopt.notifs)
	}
	for i := range unopt.notifs {
		if opt.notifs[i] != unopt.notifs[i] {
			t.Fatalf("notification %d diverged: opt %+v, unopt %+v",
				i, opt.notifs[i], unopt.notifs[i])
		}
	}
	if got, want := opt.w.Stats(), unopt.w.Stats(); got != want {
		t.Errorf("WMS stats diverged: opt %+v, unopt %+v", got, want)
	}
	// The accounting invariant: every store the unoptimized patch
	// checks is, in the optimized image, either still checked or
	// statically elided — nothing falls through the cracks.
	if unopt.w.Checks != opt.w.Checks+opt.w.Elided {
		t.Errorf("check accounting broken: unopt.Checks=%d, opt.Checks=%d + opt.Elided=%d",
			unopt.w.Checks, opt.w.Checks, opt.w.Elided)
	}
}

const diffFuel = 20_000_000

// TestDifferentialRandomPrograms: generated programs, monitors
// installed before the run and never touched again. In this regime
// every statically elided check must be proven redundant at run time —
// ElideFallbacks must be exactly zero, which is the strongest check we
// have that the dataflow facts are actually true of the execution.
func TestDifferentialRandomPrograms(t *testing.T) {
	const seeds = 30
	for seed := int64(0); seed < seeds; seed++ {
		src := minic.GenProgram(rand.New(rand.NewSource(seed)))
		muts := make([]*machineUnderTest, len(patchVariants))
		for vi, v := range patchVariants {
			mut := build(t, src, v.opt)
			for _, r := range monitorRanges(mut.m) {
				if err := mut.w.InstallMonitor(r.BA, r.EA); err != nil {
					t.Fatal(err)
				}
			}
			if err := mut.m.Run(diffFuel); err != nil {
				t.Fatalf("seed %d %s: %v\n%s", seed, v.name, err, src)
			}
			muts[vi] = mut
		}
		unopt, intra, inter := muts[0], muts[1], muts[2]
		compare(t, unopt, intra)
		compare(t, unopt, inter)
		for vi, opt := range []*machineUnderTest{intra, inter} {
			if opt.w.ElideFallbacks != 0 {
				t.Errorf("seed %d %s: %d elide fallbacks without mid-run updates (analysis fact was invalidated)\n%s",
					seed, patchVariants[vi+1].name, opt.w.ElideFallbacks, src)
			}
		}
		if inter.res.EliminatedChecks < intra.res.EliminatedChecks {
			t.Errorf("seed %d: interproc elides %d < intraproc %d",
				seed, inter.res.EliminatedChecks, intra.res.EliminatedChecks)
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged; source:\n%s", seed, src)
		}
	}
}

// monitorEvent is one scripted mid-run update, applied once the
// machine's executed-store count reaches After. Store counts advance
// identically in both images, so the script perturbs both runs at the
// same point in the store stream.
type monitorEvent struct {
	After   uint64
	Install bool
	R       arch.Range
}

// runScripted single-steps the machine, applying script events as their
// store thresholds are crossed.
func runScripted(t *testing.T, mut *machineUnderTest, script []monitorEvent) {
	t.Helper()
	si := 0
	for steps := 0; !mut.m.CPU.Halted; steps++ {
		if steps > diffFuel {
			t.Fatal("scripted run exhausted fuel")
		}
		for si < len(script) && mut.m.CPU.Stores >= script[si].After {
			ev := script[si]
			si++
			var err error
			if ev.Install {
				err = mut.w.InstallMonitor(ev.R.BA, ev.R.EA)
			} else {
				err = mut.w.RemoveMonitor(ev.R.BA, ev.R.EA)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := mut.m.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialInterleavedMonitors: monitors are installed and
// removed *during* the run. Mid-run updates invalidate the optimizer's
// static facts, so elided stores may fall back to full lookups — the
// point of the test is that the notification sequence, output, and
// shared counters stay identical anyway.
func TestDifferentialInterleavedMonitors(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		src := minic.GenProgram(rand.New(rand.NewSource(seed)))
		unopt := build(t, src, patchVariants[0].opt)
		intra := build(t, src, patchVariants[1].opt)
		inter := build(t, src, patchVariants[2].opt)

		rs := monitorRanges(unopt.m)
		if len(rs) < 2 {
			t.Fatal("generated program must have at least two data symbols")
		}
		all := arch.Range{BA: rs[0].BA, EA: unopt.m.Image.GlobalEnd}
		script := []monitorEvent{
			{After: 0, Install: true, R: rs[0]},
			{After: 5, Install: true, R: rs[1]},
			{After: 20, Install: false, R: rs[0]},
			{After: 40, Install: true, R: all},
			{After: 90, Install: false, R: all},
			{After: 120, Install: true, R: rs[0]},
		}
		runScripted(t, unopt, script)
		runScripted(t, intra, script)
		runScripted(t, inter, script)
		compare(t, unopt, intra)
		compare(t, unopt, inter)
		if t.Failed() {
			t.Fatalf("seed %d diverged; source:\n%s", seed, src)
		}
	}
}

// TestDifferentialWorkloads runs the full differential comparison over
// the five paper benchmark workloads with pre-installed monitors.
func TestDifferentialWorkloads(t *testing.T) {
	for _, name := range progs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := progs.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			const workloadFuel = 400_000_000
			muts := make([]*machineUnderTest, len(patchVariants))
			for vi, v := range patchVariants {
				mut := build(t, p.Source, v.opt)
				for _, r := range monitorRanges(mut.m) {
					if err := mut.w.InstallMonitor(r.BA, r.EA); err != nil {
						t.Fatal(err)
					}
				}
				if err := mut.m.Run(workloadFuel); err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				muts[vi] = mut
			}
			unopt, intra, inter := muts[0], muts[1], muts[2]
			compare(t, unopt, intra)
			compare(t, unopt, inter)
			for vi, opt := range []*machineUnderTest{intra, inter} {
				if opt.w.ElideFallbacks != 0 {
					t.Errorf("%s: %d elide fallbacks without mid-run updates",
						patchVariants[vi+1].name, opt.w.ElideFallbacks)
				}
				// The optimizer must actually optimize something on real
				// workloads, or the ablation measures nothing.
				if opt.res.EliminatedChecks+opt.res.FastChecks == 0 {
					t.Errorf("%s optimizer had no effect on this workload", patchVariants[vi+1].name)
				}
			}
			// The acceptance criterion: interprocedural analysis never
			// elides fewer checks than the intraprocedural baseline, and
			// a dependence map ships with every interproc patch.
			if inter.res.EliminatedChecks < intra.res.EliminatedChecks {
				t.Errorf("interproc elides %d < intraproc %d",
					inter.res.EliminatedChecks, intra.res.EliminatedChecks)
			}
			if inter.res.EliminatedIntra != intra.res.EliminatedChecks {
				t.Errorf("EliminatedIntra = %d, want %d",
					inter.res.EliminatedIntra, intra.res.EliminatedChecks)
			}
			if inter.res.DepMap == nil || len(inter.res.DepMap.Sites) == 0 {
				t.Error("interproc patch must ship a dependence map")
			}
		})
	}
}
