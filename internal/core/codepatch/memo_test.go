package codepatch

import (
	"testing"

	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/core/wms"
	"edb/internal/kernel"
	"edb/internal/minic"
)

const loopProg = `
int watched = 0;
int buffer[256];
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 2000; i = i + 1) {
		buffer[i & 255] = i;
		s = s + buffer[(i * 7) & 255];
	}
	watched = s;
	print(watched);
	return 0;
}
`

func launchCP(t *testing.T, memo bool) (*kernel.Machine, *WMS, []wms.Notification) {
	t.Helper()
	prog, err := minic.Compile(loopProg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Patch(prog); err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	var notes []wms.Notification
	notify := func(n wms.Notification) { notes = append(notes, n) }
	var w *WMS
	if memo {
		w, err = AttachWithOptions(m, notify, Options{Memo: true})
	} else {
		w, err = Attach(m, notify)
	}
	if err != nil {
		t.Fatal(err)
	}
	g := img.Data["watched"]
	if err := w.InstallMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return m, w, notes
}

func TestMemoPreservesHits(t *testing.T) {
	_, _, plain := launchCP(t, false)
	_, w, memo := launchCP(t, true)
	if len(plain) != len(memo) {
		t.Fatalf("memo changed hit count: %d vs %d", len(plain), len(memo))
	}
	if len(plain) != 1 {
		t.Fatalf("expected exactly one hit on watched, got %d", len(plain))
	}
	if plain[0] != memo[0] {
		t.Errorf("notifications differ: %+v vs %+v", plain[0], memo[0])
	}
	if w.MemoHits == 0 {
		t.Error("memo never engaged on a loop workload")
	}
}

func TestMemoReducesOverhead(t *testing.T) {
	mPlain, _, _ := launchCP(t, false)
	mMemo, w, _ := launchCP(t, true)
	if mMemo.CPU.Cycles >= mPlain.CPU.Cycles {
		t.Errorf("memo did not reduce cycles: %d vs %d", mMemo.CPU.Cycles, mPlain.CPU.Cycles)
	}
	// The loop writes buffer/s/i on unmonitored pages over and over;
	// most checks should hit the memo.
	if float64(w.MemoHits)/float64(w.Checks) < 0.5 {
		t.Errorf("memo hit rate = %d/%d, want most checks", w.MemoHits, w.Checks)
	}
}

func TestMemoInvalidatedByUpdates(t *testing.T) {
	// A monitor installed on the memoised page must immediately be
	// honoured by subsequent checks.
	prog, _ := minic.Compile(loopProg)
	_, _ = Patch(prog)
	img, _ := asm.Assemble(prog)
	m, _ := kernel.NewMachine(img, arch.PageSize4K)
	hits := 0
	w, err := AttachWithOptions(m, func(wms.Notification) { hits++ }, Options{Memo: true})
	if err != nil {
		t.Fatal(err)
	}
	// Run a while with no monitors (memo warms on the buffer page), then
	// install a monitor over the buffer mid-run.
	buf := img.Data["buffer"]
	steps := 0
	for !m.CPU.Halted {
		if err := m.CPU.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps == 20000 {
			if err := w.InstallMonitor(buf.BA, buf.EA); err != nil {
				t.Fatal(err)
			}
		}
		if steps > 5_000_000 {
			t.Fatal("runaway")
		}
	}
	if hits == 0 {
		t.Error("monitor installed mid-run caught nothing: memo not invalidated")
	}
}
