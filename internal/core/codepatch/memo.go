package codepatch

import (
	"edb/internal/arch"
	"edb/internal/core/wms"
	"edb/internal/cpu"
	"edb/internal/isa"
	"edb/internal/kernel"
)

// Options tunes the CodePatch WMS.
type Options struct {
	// Memo enables the §9 optimisation the paper sketches for loops:
	// "A preliminary check ... may be applied for write instructions
	// whose target is a loop-invariant memory range". Rather than
	// patching loops dynamically, this implementation exploits the same
	// temporal locality at the check routine: it remembers the last page
	// that contained no monitor, and writes landing on that page skip
	// the full software lookup for a two-instruction compare. The memo
	// is conservatively invalidated by every InstallMonitor /
	// RemoveMonitor.
	Memo bool
	// MemoCheckMicros is the cost of the fast-path compare (default
	// 0.25 µs ≈ 10 cycles at 40 MHz, the inline compare-and-branch the
	// paper's preliminary check would cost per iteration).
	MemoCheckMicros float64
}

// AttachWithOptions is Attach with tuning options.
func AttachWithOptions(m *kernel.Machine, notify wms.Notifier, opt Options) (*WMS, error) {
	w, err := Attach(m, notify)
	if err != nil {
		return nil, err
	}
	if opt.Memo {
		// The stub's first entry dispatches through fullCheck, which
		// routes to checkMemo once the memo is enabled.
		w.memoEnabled = true
		us := opt.MemoCheckMicros
		if us <= 0 {
			us = 0.25
		}
		w.memoCost = arch.MicrosToCycles(us)
	}
	return w, nil
}

// memoState lives in the WMS struct (see codepatch.go fields).

// checkMemo is the fast-path variant of check used when the memo is
// enabled.
func (w *WMS) checkMemo(c *cpu.CPU) error {
	addr := arch.Addr(c.Regs[isa.AT2])
	page := uint32(addr) >> 12
	if w.memoValid && page == w.memoPage {
		// The page held no monitors when last checked and no update has
		// happened since: a guaranteed miss for the price of a compare.
		w.Checks++
		w.MemoHits++
		c.ChargeCycles(w.memoCost)
		w.setLastCheck(addr, false)
		return nil
	}
	if err := w.check(c); err != nil {
		return err
	}
	// Memoise only when the page as a whole carries no monitored word:
	// a miss for this write alone would not be safe to generalise.
	if pb, ok := w.svc.Index().(*wms.PageBitmap); ok && !pb.PageHasMonitors(page) {
		w.memoPage = page
		w.memoValid = true
	}
	return nil
}
