// Package wms implements the paper's write monitor service (WMS): the
// low-level substrate for data breakpoints. The interface is the one
// defined in §2 of the paper:
//
//	InstallMonitor(BA, EA)        — install a new write monitor
//	RemoveMonitor(BA, EA)         — remove an existing write monitor
//	MonitorNotification(BA, EA, PC) — delivered for each monitor hit
//
// Three of the paper's four strategies (VirtualMemory, TrapPatch,
// CodePatch) share one software mapping from virtual addresses to active
// write monitors; this package provides that mapping. The production
// structure is the one the paper times in Appendix A.5: a hash table
// keyed by page number whose entries are bitmaps with one bit per word
// of the page (restricting monitors to word-aligned boundaries, which
// higher-level clients compensate for). Two simpler structures — a
// sorted interval list and a naive scan — serve as oracles and ablation
// baselines.
package wms

import (
	"fmt"

	"edb/internal/arch"
)

// Index is the address → active-monitor mapping shared by the software
// strategies.
type Index interface {
	// Install marks [ba, ea) as monitored. Overlapping installs nest:
	// a word stays monitored until every install covering it has been
	// removed.
	Install(ba, ea arch.Addr)
	// Remove undoes one prior Install of exactly [ba, ea).
	Remove(ba, ea arch.Addr)
	// Lookup reports whether any word of [ba, ea) is monitored. This is
	// the operation on the hot path of every checked store
	// (SoftwareLookup in the paper's timing model).
	Lookup(ba, ea arch.Addr) bool
	// ActiveWords returns the number of monitored words counted with
	// multiplicity (nested covers count once each); diagnostics and
	// invariant checks.
	ActiveWords() int
}

// ---------------------------------------------------------------------
// PageBitmap: the paper's Appendix A.5 structure.
// ---------------------------------------------------------------------

const (
	bmPageShift = 12 // bitmap bucketing uses 4 KiB pages
	bmPageSize  = 1 << bmPageShift
	bmPageWords = bmPageSize / arch.WordBytes
	bmUint64s   = bmPageWords / 64
)

type pageBits struct {
	bits [bmUint64s]uint64
	// overflow counts words covered by more than one active monitor;
	// the bitmap alone cannot express nesting.
	overflow map[uint16]uint16
	set      int // number of set bits, for cheap page-empty detection
}

// PageBitmap maps page number → per-word bitmap via a hash table
// (Go map). Lookup touches at most two pages for a word-sized write.
type PageBitmap struct {
	pages  map[uint32]*pageBits
	active int
}

// NewPageBitmap returns an empty page-bitmap index.
func NewPageBitmap() *PageBitmap {
	return &PageBitmap{pages: make(map[uint32]*pageBits)}
}

func (p *PageBitmap) forEachWord(ba, ea arch.Addr, f func(pg *pageBits, page uint32, wordIdx uint16)) {
	ba = arch.AlignDown(ba, arch.WordBytes)
	ea = arch.AlignUp(ea, arch.WordBytes)
	for a := ba; a < ea; a += arch.WordBytes {
		page := uint32(a) >> bmPageShift
		pg := p.pages[page]
		if pg == nil {
			pg = &pageBits{}
			p.pages[page] = pg
		}
		f(pg, page, uint16((a%bmPageSize)/arch.WordBytes))
	}
}

// Install implements Index.
func (p *PageBitmap) Install(ba, ea arch.Addr) {
	p.forEachWord(ba, ea, func(pg *pageBits, page uint32, w uint16) {
		mask := uint64(1) << (w % 64)
		if pg.bits[w/64]&mask != 0 {
			// Already set: record the extra cover in the overflow table.
			if pg.overflow == nil {
				pg.overflow = make(map[uint16]uint16)
			}
			pg.overflow[w]++
		} else {
			pg.bits[w/64] |= mask
			pg.set++
		}
		p.active++
	})
}

// Remove implements Index.
func (p *PageBitmap) Remove(ba, ea arch.Addr) {
	ba = arch.AlignDown(ba, arch.WordBytes)
	ea = arch.AlignUp(ea, arch.WordBytes)
	for a := ba; a < ea; a += arch.WordBytes {
		page := uint32(a) >> bmPageShift
		pg := p.pages[page]
		if pg == nil {
			continue // remove of never-installed range: no-op
		}
		w := uint16((a % bmPageSize) / arch.WordBytes)
		mask := uint64(1) << (w % 64)
		if pg.bits[w/64]&mask == 0 {
			continue
		}
		if n := pg.overflow[w]; n > 0 {
			if n == 1 {
				delete(pg.overflow, w)
			} else {
				pg.overflow[w] = n - 1
			}
			p.active--
			continue
		}
		pg.bits[w/64] &^= mask
		pg.set--
		p.active--
		if pg.set == 0 {
			delete(p.pages, page)
		}
	}
}

// Lookup implements Index.
func (p *PageBitmap) Lookup(ba, ea arch.Addr) bool {
	ba = arch.AlignDown(ba, arch.WordBytes)
	ea = arch.AlignUp(ea, arch.WordBytes)
	for a := ba; a < ea; a += arch.WordBytes {
		pg := p.pages[uint32(a)>>bmPageShift]
		if pg == nil {
			// Skip ahead to the next page boundary.
			next := arch.PageBase(a, bmPageSize) + bmPageSize
			if next <= a {
				break
			}
			a = next - arch.WordBytes
			continue
		}
		w := (a % bmPageSize) / arch.WordBytes
		if pg.bits[w/64]&(uint64(1)<<(w%64)) != 0 {
			return true
		}
	}
	return false
}

// ActiveWords implements Index.
func (p *PageBitmap) ActiveWords() int { return p.active }

// Pages returns the number of pages holding at least one monitored word.
func (p *PageBitmap) Pages() int { return len(p.pages) }

// PageHasMonitors reports whether the 4 KiB page with the given page
// number holds any monitored word. This is the fast-path query behind
// the CodePatch memo optimisation.
func (p *PageBitmap) PageHasMonitors(page uint32) bool {
	_, ok := p.pages[page]
	return ok
}

// ---------------------------------------------------------------------
// IntervalIndex: sorted list of installed ranges (ablation baseline).
// ---------------------------------------------------------------------

// IntervalIndex keeps every installed range in a slice ordered by BA and
// answers lookups by binary search plus local scan. O(log n + k) lookup,
// O(n) install/remove; competitive for small monitor counts.
type IntervalIndex struct {
	ranges []arch.Range // sorted by BA; duplicates allowed
	words  int
}

// NewIntervalIndex returns an empty interval index.
func NewIntervalIndex() *IntervalIndex { return &IntervalIndex{} }

// Install implements Index.
func (x *IntervalIndex) Install(ba, ea arch.Addr) {
	r := arch.Range{BA: arch.AlignDown(ba, arch.WordBytes), EA: arch.AlignUp(ea, arch.WordBytes)}
	if r.Empty() {
		return
	}
	i := x.search(r.BA)
	x.ranges = append(x.ranges, arch.Range{})
	copy(x.ranges[i+1:], x.ranges[i:])
	x.ranges[i] = r
	x.words += r.Words()
}

// Remove implements Index.
func (x *IntervalIndex) Remove(ba, ea arch.Addr) {
	r := arch.Range{BA: arch.AlignDown(ba, arch.WordBytes), EA: arch.AlignUp(ea, arch.WordBytes)}
	for i := x.search(r.BA); i < len(x.ranges) && x.ranges[i].BA == r.BA; i++ {
		if x.ranges[i] == r {
			x.ranges = append(x.ranges[:i], x.ranges[i+1:]...)
			x.words -= r.Words()
			return
		}
	}
}

// Lookup implements Index.
func (x *IntervalIndex) Lookup(ba, ea arch.Addr) bool {
	q := arch.Range{BA: arch.AlignDown(ba, arch.WordBytes), EA: arch.AlignUp(ea, arch.WordBytes)}
	// Scan backwards from the first range starting at or after q.EA.
	i := x.search(q.EA)
	for j := i - 1; j >= 0; j-- {
		if x.ranges[j].Overlaps(q) {
			return true
		}
		// Ranges are sorted by BA but have arbitrary EA, so we cannot
		// stop at the first non-overlap in general; track the furthest
		// possible reach instead. For monitor workloads ranges are
		// small, so a bounded scan with an early exit on distance works.
		if q.BA >= x.ranges[j].BA && q.BA-x.ranges[j].BA > maxMonitorSpan {
			break
		}
	}
	return false
}

// maxMonitorSpan bounds how far back the interval lookup scans; monitors
// larger than this are not supported by IntervalIndex (the page bitmap
// has no such limit).
const maxMonitorSpan = 1 << 24

// ActiveWords implements Index.
func (x *IntervalIndex) ActiveWords() int { return x.words }

func (x *IntervalIndex) search(a arch.Addr) int {
	lo, hi := 0, len(x.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if x.ranges[mid].BA < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ---------------------------------------------------------------------
// NaiveIndex: linear scan oracle.
// ---------------------------------------------------------------------

// NaiveIndex is the obviously-correct reference implementation used by
// property tests and as the ablation worst case.
type NaiveIndex struct {
	ranges []arch.Range
}

// NewNaiveIndex returns an empty naive index.
func NewNaiveIndex() *NaiveIndex { return &NaiveIndex{} }

// Install implements Index.
func (x *NaiveIndex) Install(ba, ea arch.Addr) {
	r := arch.Range{BA: arch.AlignDown(ba, arch.WordBytes), EA: arch.AlignUp(ea, arch.WordBytes)}
	if !r.Empty() {
		x.ranges = append(x.ranges, r)
	}
}

// Remove implements Index.
func (x *NaiveIndex) Remove(ba, ea arch.Addr) {
	r := arch.Range{BA: arch.AlignDown(ba, arch.WordBytes), EA: arch.AlignUp(ea, arch.WordBytes)}
	for i := range x.ranges {
		if x.ranges[i] == r {
			x.ranges = append(x.ranges[:i], x.ranges[i+1:]...)
			return
		}
	}
}

// Lookup implements Index.
func (x *NaiveIndex) Lookup(ba, ea arch.Addr) bool {
	q := arch.Range{BA: arch.AlignDown(ba, arch.WordBytes), EA: arch.AlignUp(ea, arch.WordBytes)}
	for _, r := range x.ranges {
		if r.Overlaps(q) {
			return true
		}
	}
	return false
}

// ActiveWords implements Index.
func (x *NaiveIndex) ActiveWords() int {
	n := 0
	for _, r := range x.ranges {
		n += r.Words()
	}
	return n
}

// ---------------------------------------------------------------------
// Service: the WMS proper.
// ---------------------------------------------------------------------

// Notification is a monitor hit, as delivered to MonitorNotification:
// the written range and the program counter of the writing instruction.
type Notification struct {
	BA, EA arch.Addr
	PC     arch.Addr
}

// Notifier receives monitor notifications.
type Notifier func(n Notification)

// Stats counts WMS activity; these are the paper's shared counting
// variables (Figure 2).
type Stats struct {
	Installs uint64 // InstallMonitor_σ
	Removes  uint64 // RemoveMonitor_σ
	Hits     uint64 // MonitorHit_σ
	Misses   uint64 // MonitorMiss_σ
}

// Service is the strategy-independent WMS core: the software mapping
// plus notification dispatch and counting.
type Service struct {
	idx    Index
	notify Notifier
	stats  Stats
}

// NewService builds a WMS over the given index. A nil index selects the
// production PageBitmap.
func NewService(idx Index, notify Notifier) *Service {
	if idx == nil {
		idx = NewPageBitmap()
	}
	return &Service{idx: idx, notify: notify}
}

// InstallMonitor installs a write monitor over [ba, ea).
func (s *Service) InstallMonitor(ba, ea arch.Addr) error {
	if ea <= ba {
		return fmt.Errorf("wms: empty monitor range [%#x,%#x)", uint32(ba), uint32(ea))
	}
	s.idx.Install(ba, ea)
	s.stats.Installs++
	return nil
}

// RemoveMonitor removes a previously installed monitor.
func (s *Service) RemoveMonitor(ba, ea arch.Addr) error {
	if ea <= ba {
		return fmt.Errorf("wms: empty monitor range [%#x,%#x)", uint32(ba), uint32(ea))
	}
	s.idx.Remove(ba, ea)
	s.stats.Removes++
	return nil
}

// CheckWrite is the per-store check: it classifies the write as hit or
// miss, dispatches MonitorNotification on hits, and returns whether the
// write hit.
func (s *Service) CheckWrite(ba, ea, pc arch.Addr) bool {
	if s.idx.Lookup(ba, ea) {
		s.stats.Hits++
		if s.notify != nil {
			s.notify(Notification{BA: ba, EA: ea, PC: pc})
		}
		return true
	}
	s.stats.Misses++
	return false
}

// Lookup exposes the raw index query without counting (used by fault
// handlers that account hits separately).
func (s *Service) Lookup(ba, ea arch.Addr) bool { return s.idx.Lookup(ba, ea) }

// Stats returns a copy of the activity counters.
func (s *Service) Stats() Stats { return s.stats }

// Index returns the underlying mapping (diagnostics).
func (s *Service) Index() Index { return s.idx }
