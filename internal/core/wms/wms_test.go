package wms

import (
	"math/rand"
	"testing"

	"edb/internal/arch"
)

func indexes() map[string]func() Index {
	return map[string]func() Index{
		"pagebitmap": func() Index { return NewPageBitmap() },
		"interval":   func() Index { return NewIntervalIndex() },
		"naive":      func() Index { return NewNaiveIndex() },
	}
}

func TestInstallLookupRemove(t *testing.T) {
	for name, mk := range indexes() {
		t.Run(name, func(t *testing.T) {
			x := mk()
			base := arch.Addr(0x400000)
			x.Install(base+8, base+16)
			if !x.Lookup(base+8, base+12) {
				t.Error("first word should hit")
			}
			if !x.Lookup(base+12, base+16) {
				t.Error("second word should hit")
			}
			if x.Lookup(base, base+8) {
				t.Error("before monitor should miss")
			}
			if x.Lookup(base+16, base+20) {
				t.Error("after monitor should miss")
			}
			if x.ActiveWords() != 2 {
				t.Errorf("ActiveWords = %d", x.ActiveWords())
			}
			x.Remove(base+8, base+16)
			if x.Lookup(base+8, base+16) {
				t.Error("removed monitor should miss")
			}
			if x.ActiveWords() != 0 {
				t.Errorf("ActiveWords after remove = %d", x.ActiveWords())
			}
		})
	}
}

func TestOverlappingInstallsNest(t *testing.T) {
	for name, mk := range indexes() {
		t.Run(name, func(t *testing.T) {
			x := mk()
			base := arch.Addr(0x400000)
			x.Install(base, base+16)
			x.Install(base+8, base+24) // overlaps [8,16)
			x.Remove(base, base+16)
			// Words 8..24 must still be monitored.
			if !x.Lookup(base+8, base+12) {
				t.Error("word 8 should still be covered by second monitor")
			}
			if !x.Lookup(base+16, base+20) {
				t.Error("word 16 should still be covered")
			}
			if x.Lookup(base, base+8) {
				t.Error("words 0..8 should be free")
			}
			x.Remove(base+8, base+24)
			if x.Lookup(base, base+24) {
				t.Error("everything removed")
			}
		})
	}
}

func TestCrossPageMonitor(t *testing.T) {
	for name, mk := range indexes() {
		t.Run(name, func(t *testing.T) {
			x := mk()
			// Straddle a 4K page boundary.
			ba := arch.Addr(0x400000 + 4096 - 8)
			x.Install(ba, ba+16)
			if !x.Lookup(ba, ba+4) || !x.Lookup(ba+12, ba+16) {
				t.Error("cross-page monitor lookup failed")
			}
			x.Remove(ba, ba+16)
			if x.Lookup(ba, ba+16) {
				t.Error("cross-page remove failed")
			}
		})
	}
}

func TestUnalignedRangesRounded(t *testing.T) {
	// Monitors are word-aligned (Appendix A.5 footnote): unaligned
	// requests round outward.
	x := NewPageBitmap()
	base := arch.Addr(0x400000)
	x.Install(base+5, base+7) // covers word [4,8)
	if !x.Lookup(base+4, base+8) {
		t.Error("unaligned install should cover enclosing word")
	}
	x.Remove(base+5, base+7)
	if x.Lookup(base+4, base+8) {
		t.Error("unaligned remove should clear it")
	}
}

func TestRemoveNeverInstalledIsNoop(t *testing.T) {
	for name, mk := range indexes() {
		t.Run(name, func(t *testing.T) {
			x := mk()
			x.Remove(0x400000, 0x400010) // must not panic
			if x.ActiveWords() != 0 {
				t.Error("phantom words after spurious remove")
			}
		})
	}
}

func TestPagesTracking(t *testing.T) {
	x := NewPageBitmap()
	base := arch.Addr(0x400000)
	x.Install(base, base+4)
	x.Install(base+8192, base+8196)
	if x.Pages() != 2 {
		t.Errorf("Pages = %d, want 2", x.Pages())
	}
	x.Remove(base, base+4)
	if x.Pages() != 1 {
		t.Errorf("Pages after remove = %d, want 1", x.Pages())
	}
}

// Property test: PageBitmap and IntervalIndex agree with NaiveIndex on a
// random workload of installs, removes, and lookups.
func TestIndexesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pb := NewPageBitmap()
	iv := NewIntervalIndex()
	nv := NewNaiveIndex()
	var installed []arch.Range
	region := arch.Addr(0x400000)
	randRange := func() arch.Range {
		ba := region + arch.Addr(rng.Intn(4096))*4
		ln := arch.Addr(1+rng.Intn(64)) * 4
		return arch.Range{BA: ba, EA: ba + ln}
	}
	for step := 0; step < 4000; step++ {
		switch rng.Intn(4) {
		case 0, 1:
			r := randRange()
			pb.Install(r.BA, r.EA)
			iv.Install(r.BA, r.EA)
			nv.Install(r.BA, r.EA)
			installed = append(installed, r)
		case 2:
			if len(installed) > 0 {
				i := rng.Intn(len(installed))
				r := installed[i]
				installed = append(installed[:i], installed[i+1:]...)
				pb.Remove(r.BA, r.EA)
				iv.Remove(r.BA, r.EA)
				nv.Remove(r.BA, r.EA)
			}
		case 3:
			q := randRange()
			want := nv.Lookup(q.BA, q.EA)
			if got := pb.Lookup(q.BA, q.EA); got != want {
				t.Fatalf("step %d: pagebitmap lookup %v = %v, naive = %v", step, q, got, want)
			}
			if got := iv.Lookup(q.BA, q.EA); got != want {
				t.Fatalf("step %d: interval lookup %v = %v, naive = %v", step, q, got, want)
			}
		}
		if step%500 == 0 {
			if pb.ActiveWords() != nv.ActiveWords() {
				t.Fatalf("step %d: active words diverge: pb=%d naive=%d",
					step, pb.ActiveWords(), nv.ActiveWords())
			}
		}
	}
}

func TestServiceCounting(t *testing.T) {
	var notes []Notification
	s := NewService(nil, func(n Notification) { notes = append(notes, n) })
	base := arch.Addr(0x400000)
	if err := s.InstallMonitor(base, base+8); err != nil {
		t.Fatal(err)
	}
	if hit := s.CheckWrite(base, base+4, 0x1000); !hit {
		t.Error("write to monitor should hit")
	}
	if hit := s.CheckWrite(base+100, base+104, 0x1004); hit {
		t.Error("write off monitor should miss")
	}
	if err := s.RemoveMonitor(base, base+8); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Installs != 1 || st.Removes != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(notes) != 1 || notes[0].PC != 0x1000 || notes[0].BA != base {
		t.Errorf("notifications = %+v", notes)
	}
}

func TestServiceRejectsEmptyRanges(t *testing.T) {
	s := NewService(nil, nil)
	if err := s.InstallMonitor(8, 8); err == nil {
		t.Error("empty install should error")
	}
	if err := s.RemoveMonitor(8, 4); err == nil {
		t.Error("inverted remove should error")
	}
}

func TestServiceNilNotifier(t *testing.T) {
	s := NewService(NewNaiveIndex(), nil)
	_ = s.InstallMonitor(0x400000, 0x400004)
	// Must not panic with a nil notifier.
	if !s.CheckWrite(0x400000, 0x400004, 0) {
		t.Error("hit not detected")
	}
}

func TestServiceLookupDoesNotCount(t *testing.T) {
	s := NewService(nil, nil)
	_ = s.InstallMonitor(0x400000, 0x400004)
	s.Lookup(0x400000, 0x400004)
	if st := s.Stats(); st.Hits != 0 && st.Misses != 0 {
		t.Error("raw Lookup must not count")
	}
}

func TestLargeMonitorCount(t *testing.T) {
	// The paper's motivating case: "monitoring a large central data
	// structure with thousands of constituent elements" — far beyond any
	// hardware register file.
	x := NewPageBitmap()
	base := arch.Addr(0x1000000)
	const n = 5000
	for i := 0; i < n; i++ {
		ba := base + arch.Addr(i*16)
		x.Install(ba, ba+8)
	}
	if x.ActiveWords() != n*2 {
		t.Fatalf("ActiveWords = %d", x.ActiveWords())
	}
	hits := 0
	for i := 0; i < n; i++ {
		if x.Lookup(base+arch.Addr(i*16), base+arch.Addr(i*16)+4) {
			hits++
		}
		if x.Lookup(base+arch.Addr(i*16)+8, base+arch.Addr(i*16)+12) {
			t.Fatal("gap should miss")
		}
	}
	if hits != n {
		t.Fatalf("hits = %d", hits)
	}
}

func BenchmarkPageBitmapLookupMiss(b *testing.B) {
	x := NewPageBitmap()
	base := arch.Addr(0x1000000)
	for i := 0; i < 100; i++ {
		ba := base + arch.Addr(i*4096)
		x.Install(ba, ba+64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(base+2048, base+2052)
	}
}

func BenchmarkPageBitmapLookupHit(b *testing.B) {
	x := NewPageBitmap()
	base := arch.Addr(0x1000000)
	x.Install(base, base+64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(base+32, base+36)
	}
}

func BenchmarkPageBitmapInstallRemove(b *testing.B) {
	x := NewPageBitmap()
	base := arch.Addr(0x1000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba := base + arch.Addr(i%1000)*64
		x.Install(ba, ba+32)
		x.Remove(ba, ba+32)
	}
}

func BenchmarkIntervalLookup(b *testing.B) {
	x := NewIntervalIndex()
	base := arch.Addr(0x1000000)
	for i := 0; i < 100; i++ {
		ba := base + arch.Addr(i*4096)
		x.Install(ba, ba+64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(base+2048, base+2052)
	}
}

func BenchmarkNaiveLookup(b *testing.B) {
	x := NewNaiveIndex()
	base := arch.Addr(0x1000000)
	for i := 0; i < 100; i++ {
		ba := base + arch.Addr(i*4096)
		x.Install(ba, ba+64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(base+2048, base+2052)
	}
}
