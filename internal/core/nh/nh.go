// Package nh implements the paper's NativeHardware WMS strategy (§7.1.1,
// Figure 3): monitor registers raise a fault on each hit; installs,
// removes, and misses are free because the comparison happens in
// hardware. Each fault costs NHFaultHandler (131 µs on the paper's
// SPARCstation model) to deliver to a user-level handler and continue.
//
// The strategy's fundamental limit — a handful of simultaneous monitors
// on real hardware — is enforced by the underlying register file:
// Install fails with hw.ErrNoFreeRegister once the registers are full.
package nh

import (
	"edb/internal/arch"
	"edb/internal/core/wms"
	"edb/internal/hw"
	"edb/internal/kernel"
)

// WMS is the NativeHardware write monitor service attached to one
// machine.
type WMS struct {
	m      *kernel.Machine
	regs   *hw.MonitorRegisters
	notify wms.Notifier
	stats  wms.Stats
}

// Attach wires a NativeHardware WMS to the machine, claiming the CPU's
// store observation hook (the simulator stands in for the silicon
// comparator). capacity is the number of monitor registers
// (hw.NumShippingRegisters for realism, hw.Unlimited for the paper's
// hypothetical).
func Attach(m *kernel.Machine, capacity int, notify wms.Notifier) *WMS {
	w := &WMS{m: m, regs: hw.New(capacity), notify: notify}
	m.CPU.OnStore = w.onStore
	return w
}

// InstallMonitor programs a monitor register. It fails when the
// hardware is out of registers.
func (w *WMS) InstallMonitor(ba, ea arch.Addr) error {
	if err := w.regs.Install(ba, ea); err != nil {
		return err
	}
	w.stats.Installs++
	return nil
}

// RemoveMonitor clears a monitor register.
func (w *WMS) RemoveMonitor(ba, ea arch.Addr) error {
	if err := w.regs.Remove(ba, ea); err != nil {
		return err
	}
	w.stats.Removes++
	return nil
}

func (w *WMS) onStore(ba, ea, pc arch.Addr) {
	if w.regs.Match(ba, ea) {
		w.stats.Hits++
		w.m.CPU.ChargeCycles(w.m.Costs.HWMonitorFault)
		if w.notify != nil {
			w.notify(wms.Notification{BA: ba, EA: ea, PC: pc})
		}
		return
	}
	w.stats.Misses++
}

// Stats returns the activity counters.
func (w *WMS) Stats() wms.Stats { return w.stats }

// Registers exposes the underlying register file (occupancy metrics).
func (w *WMS) Registers() *hw.MonitorRegisters { return w.regs }
