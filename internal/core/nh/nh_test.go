package nh

import (
	"testing"

	"edb/internal/arch"
	"edb/internal/core/wms"
	"edb/internal/hw"
	"edb/internal/kernel"
	"edb/internal/minic"
)

const src = `
int g = 0;
int other = 0;
int main() {
	int i;
	for (i = 0; i < 10; i = i + 1) {
		g = g + 1;
		other = other + 2;
	}
	return 0;
}`

func machine(t *testing.T) *kernel.Machine {
	t.Helper()
	img, err := minic.CompileToImage(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHitsAndMisses(t *testing.T) {
	m := machine(t)
	var notes []wms.Notification
	w := Attach(m, hw.NumShippingRegisters, func(n wms.Notification) { notes = append(notes, n) })
	g := m.Image.Data["g"]
	if err := w.InstallMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Hits != 10 {
		t.Errorf("hits = %d, want 10", st.Hits)
	}
	if st.Misses == 0 {
		t.Error("other writes should be misses")
	}
	if len(notes) != 10 {
		t.Errorf("notifications = %d", len(notes))
	}
	if err := w.RemoveMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats(); got.Installs != 1 || got.Removes != 1 {
		t.Errorf("install/remove = %d/%d", got.Installs, got.Removes)
	}
}

func TestFaultCostCharged(t *testing.T) {
	// A run with a hot monitor must cost hits × NHFaultHandler more than
	// an unmonitored run.
	mBase := machine(t)
	Attach(mBase, hw.NumShippingRegisters, nil)
	if err := mBase.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	m := machine(t)
	w := Attach(m, hw.NumShippingRegisters, nil)
	g := m.Image.Data["g"]
	_ = w.InstallMonitor(g.BA, g.EA)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	want := 10 * m.Costs.HWMonitorFault
	got := m.CPU.Cycles - mBase.CPU.Cycles
	if got != want {
		t.Errorf("monitored run cost %d extra cycles, want %d", got, want)
	}
}

func TestRegisterBudget(t *testing.T) {
	m := machine(t)
	w := Attach(m, 2, nil)
	base := arch.GlobalBase
	if err := w.InstallMonitor(base, base+4); err != nil {
		t.Fatal(err)
	}
	if err := w.InstallMonitor(base+8, base+12); err != nil {
		t.Fatal(err)
	}
	if err := w.InstallMonitor(base+16, base+20); err != hw.ErrNoFreeRegister {
		t.Errorf("over-budget install: %v", err)
	}
	if w.Registers().Peak() != 2 {
		t.Errorf("peak = %d", w.Registers().Peak())
	}
}
