package vmwms

import (
	"testing"

	"edb/internal/arch"
	"edb/internal/core/wms"
	"edb/internal/kernel"
	"edb/internal/mem"
	"edb/internal/minic"
)

const src = `
int watched = 0;
int neighbour = 0;
int faraway[2048];
int main() {
	int i;
	for (i = 0; i < 20; i = i + 1) {
		neighbour = neighbour + 1;   // same page as watched
		faraway[1500] = i;           // different page
		if (i % 4 == 0) { watched = watched + 1; }
	}
	print(watched);
	return 0;
}`

func machine(t *testing.T, pageSize int) *kernel.Machine {
	t.Helper()
	img, err := minic.CompileToImage(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(img, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHitsMissesAndPages(t *testing.T) {
	m := machine(t, arch.PageSize4K)
	var notes []wms.Notification
	w := Attach(m, func(n wms.Notification) { notes = append(notes, n) })
	g := m.Image.Data["watched"]
	if err := w.InstallMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if w.MonitoredPages() != 1 {
		t.Errorf("monitored pages = %d", w.MonitoredPages())
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Hits != 5 || len(notes) != 5 {
		t.Errorf("hits = %d / %d notifications, want 5", st.Hits, len(notes))
	}
	// Only same-page writes fault: neighbour (20 writes) and loop locals
	// are on the stack page — locals aren't monitored, so misses come
	// from neighbour (+ any same-page data writes).
	if st.Misses < 20 {
		t.Errorf("active-page misses = %d, want >= 20 from neighbour", st.Misses)
	}
	// faraway writes never reach the WMS at all.
	if w.Faults != st.Hits+st.Misses {
		t.Errorf("faults %d != hits+misses %d", w.Faults, st.Hits+st.Misses)
	}
	if err := w.RemoveMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if w.MonitoredPages() != 0 {
		t.Error("page still protected after remove")
	}
	// Page must be writable again.
	if err := m.Mem.WriteWord(g.BA, 1); err != nil {
		t.Errorf("page not unprotected: %v", err)
	}
}

func TestPageProtectionVisible(t *testing.T) {
	m := machine(t, arch.PageSize4K)
	w := Attach(m, nil)
	g := m.Image.Data["watched"]
	_ = w.InstallMonitor(g.BA, g.EA)
	if p := m.Mem.ProtAt(g.BA); p&mem.ProtWrite != 0 {
		t.Error("monitored page still writable")
	}
	if w.ProtectCalls != 1 {
		t.Errorf("ProtectCalls = %d", w.ProtectCalls)
	}
	_ = w.RemoveMonitor(g.BA, g.EA)
	if w.UnprotectCalls != 1 {
		t.Errorf("UnprotectCalls = %d", w.UnprotectCalls)
	}
}

func TestTwoMonitorsOnePage(t *testing.T) {
	m := machine(t, arch.PageSize4K)
	w := Attach(m, nil)
	g := m.Image.Data["watched"]
	n := m.Image.Data["neighbour"]
	_ = w.InstallMonitor(g.BA, g.EA)
	_ = w.InstallMonitor(n.BA, n.EA)
	// One protect for the shared page.
	if w.ProtectCalls != 1 {
		t.Errorf("ProtectCalls = %d, want 1", w.ProtectCalls)
	}
	_ = w.RemoveMonitor(g.BA, g.EA)
	if w.UnprotectCalls != 0 {
		t.Error("page unprotected while a monitor remains")
	}
	_ = w.RemoveMonitor(n.BA, n.EA)
	if w.UnprotectCalls != 1 {
		t.Errorf("UnprotectCalls = %d, want 1", w.UnprotectCalls)
	}
}

func Test8KPages(t *testing.T) {
	m := machine(t, arch.PageSize8K)
	w := Attach(m, nil)
	g := m.Image.Data["watched"]
	_ = w.InstallMonitor(g.BA, g.EA)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Hits != 5 {
		t.Errorf("hits = %d", st.Hits)
	}
	// The 8K page covers more neighbours, so at least as many misses as
	// a 4K run would see.
	m4 := machine(t, arch.PageSize4K)
	w4 := Attach(m4, nil)
	g4 := m4.Image.Data["watched"]
	_ = w4.InstallMonitor(g4.BA, g4.EA)
	if err := m4.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if st.Misses < w4.Stats().Misses {
		t.Errorf("8K misses (%d) < 4K misses (%d)", st.Misses, w4.Stats().Misses)
	}
}

func TestProgramSemanticsPreserved(t *testing.T) {
	mPlain := machine(t, arch.PageSize4K)
	if err := mPlain.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	m := machine(t, arch.PageSize4K)
	w := Attach(m, nil)
	g := m.Image.Data["watched"]
	_ = w.InstallMonitor(g.BA, g.EA)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Out.String() != mPlain.Out.String() {
		t.Errorf("output changed: %q vs %q", m.Out.String(), mPlain.Out.String())
	}
}
