// Package vmwms implements the paper's VirtualMemory WMS strategy
// (§3.2, §7.1.2, Figure 4): pages holding active write monitors are
// write-protected; a store to such a page faults into a user-level
// handler that looks the address up in the software mapping, delivers a
// notification on hits, emulates the faulting store, and continues —
// keeping the page protected for subsequent writes.
//
// Cost accounting on the simulated machine reproduces the paper's
// composite timings: the kernel charges signal delivery, the handler's
// mprotect pair charges VMUnprotect+VMProtect, and emulation charges the
// decode-and-continue cost; together they equal VMFaultHandler_τ
// (561 µs). Each install/remove charges SoftwareUpdate plus the
// unprotect/reprotect of the WMS metadata page (the paper's models keep
// the address→monitor mapping in the debuggee's address space and
// re-protect it around every update).
package vmwms

import (
	"fmt"

	"edb/internal/arch"
	"edb/internal/core/wms"
	"edb/internal/isa"
	"edb/internal/kernel"
	"edb/internal/mem"
)

// WMS is a VirtualMemory write monitor service attached to one machine.
type WMS struct {
	m       *kernel.Machine
	svc     *wms.Service
	notify  wms.Notifier
	updCost uint64

	// pageMonitors counts active monitors per MMU page, driving
	// protect/unprotect transitions.
	pageMonitors map[uint32]int

	// ProtectCalls / UnprotectCalls count mprotect transitions for
	// validation against VMProtect_σ / VMUnprotect_σ.
	ProtectCalls, UnprotectCalls uint64
	// Faults counts delivered write faults (hits + active-page misses).
	Faults uint64
}

// Attach wires a VirtualMemory WMS to the machine, claiming the
// machine's fault handler.
func Attach(m *kernel.Machine, notify wms.Notifier) *WMS {
	w := &WMS{
		m:            m,
		notify:       notify,
		pageMonitors: make(map[uint32]int),
		updCost:      arch.MicrosToCycles(22), // SoftwareUpdate_τ
	}
	w.svc = wms.NewService(nil, nil)
	m.RegisterFaultHandler(w.onFault)
	return w
}

func (w *WMS) pageSize() int { return w.m.Mem.PageSize() }

// InstallMonitor installs a write monitor over [ba, ea), protecting any
// page whose active-monitor count rises from zero.
func (w *WMS) InstallMonitor(ba, ea arch.Addr) error {
	if err := w.svc.InstallMonitor(ba, ea); err != nil {
		return err
	}
	// Updating the (debuggee-resident) mapping: unprotect the metadata
	// page, update, reprotect.
	w.m.CPU.ChargeCycles(w.m.Costs.MprotectOff + w.updCost + w.m.Costs.MprotectOn)
	ps := w.pageSize()
	first, last := arch.PagesSpanned(ba, ea, ps)
	for pn := first; pn <= last; pn++ {
		w.pageMonitors[pn]++
		if w.pageMonitors[pn] == 1 {
			base := arch.Addr(pn) * arch.Addr(ps)
			w.m.Mprotect(base, base+arch.Addr(ps), mem.ProtRead)
			w.ProtectCalls++
		}
	}
	return nil
}

// RemoveMonitor removes a monitor, unprotecting pages whose count drops
// to zero.
func (w *WMS) RemoveMonitor(ba, ea arch.Addr) error {
	if err := w.svc.RemoveMonitor(ba, ea); err != nil {
		return err
	}
	w.m.CPU.ChargeCycles(w.m.Costs.MprotectOff + w.updCost + w.m.Costs.MprotectOn)
	ps := w.pageSize()
	first, last := arch.PagesSpanned(ba, ea, ps)
	for pn := first; pn <= last; pn++ {
		w.pageMonitors[pn]--
		if w.pageMonitors[pn] == 0 {
			delete(w.pageMonitors, pn)
			base := arch.Addr(pn) * arch.Addr(ps)
			w.m.Mprotect(base, base+arch.Addr(ps), mem.ProtRW)
			w.UnprotectCalls++
		}
	}
	return nil
}

// onFault is the user-level write-fault handler. Signal-delivery cost
// has already been charged by the kernel.
func (w *WMS) onFault(m *kernel.Machine, f *mem.Fault, in isa.Inst, pc arch.Addr) error {
	ps := w.pageSize()
	pn := arch.PageNum(f.Addr, ps)
	if w.pageMonitors[pn] == 0 {
		return fmt.Errorf("vmwms: unexpected write fault at %#x (page not monitored)", uint32(f.Addr))
	}
	w.Faults++

	// Software lookup to classify hit vs same-page miss.
	w.m.CPU.ChargeCycles(arch.MicrosToCycles(2.75)) // SoftwareLookup_τ
	hit := w.svc.CheckWrite(f.Addr, f.Addr+arch.WordBytes, pc)

	// Continue execution: unprotect the page, emulate the store,
	// reprotect — the sequence of the paper's Appendix A.2 handler.
	base := arch.PageBase(f.Addr, ps)
	m.Mprotect(base, base+arch.Addr(ps), mem.ProtRW)
	addr, err := m.EmulateStore(in)
	if err != nil {
		return err
	}
	if addr != f.Addr {
		return fmt.Errorf("vmwms: emulated store landed at %#x, fault was %#x", uint32(addr), uint32(f.Addr))
	}
	m.Mprotect(base, base+arch.Addr(ps), mem.ProtRead)

	if hit && w.notify != nil {
		w.notify(wms.Notification{BA: f.Addr, EA: f.Addr + arch.WordBytes, PC: pc})
	}
	return nil
}

// Stats returns the underlying service's counters. Note that, unlike
// the software strategies, only writes that fault are counted: stores to
// unprotected pages never reach the WMS (that is the whole point of the
// strategy).
func (w *WMS) Stats() wms.Stats { return w.svc.Stats() }

// MonitoredPages returns the number of currently protected pages.
func (w *WMS) MonitoredPages() int { return len(w.pageMonitors) }
