package trappatch

import (
	"strings"
	"testing"

	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/core/wms"
	"edb/internal/isa"
	"edb/internal/kernel"
	"edb/internal/minic"
)

const src = `
int g = 0;
int main() {
	int i;
	for (i = 0; i < 6; i = i + 1) { g = g + i; }
	print(g);
	return 0;
}`

func patched(t *testing.T) (*kernel.Machine, *PatchResult) {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Patch(prog)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestPatchReplacesEveryStore(t *testing.T) {
	prog, _ := minic.Compile(src)
	orig := 0
	for _, f := range prog.Funcs {
		for _, in := range f.Body {
			if in.Pseudo == asm.PNone && in.Op == isa.SW {
				orig++
			}
		}
	}
	res, err := Patch(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched != orig {
		t.Errorf("patched %d of %d stores", res.Patched, orig)
	}
	traps := 0
	for _, f := range prog.Funcs {
		for _, in := range f.Body {
			if in.Pseudo == asm.PNone && in.Op == isa.SW {
				t.Fatal("store survived patching")
			}
			if in.Pseudo == asm.PNone && in.Op == isa.TRAP {
				traps++
			}
		}
	}
	if traps != orig {
		t.Errorf("traps = %d, want %d", traps, orig)
	}
	// The image size is unchanged: trap-for-store is word-for-word.
	img1, _ := minic.CompileToImage(src)
	img2, _ := asm.Assemble(prog)
	if len(img1.Text) != len(img2.Text) {
		t.Errorf("patching changed text size: %d vs %d", len(img1.Text), len(img2.Text))
	}
}

func TestSemanticsAndNotifications(t *testing.T) {
	m, res := patched(t)
	var notes []wms.Notification
	w := Attach(m, res, func(n wms.Notification) { notes = append(notes, n) })
	g := m.Image.Data["g"]
	if err := w.InstallMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Out.String(), "15") {
		t.Errorf("output = %q, want 15", m.Out.String())
	}
	if len(notes) != 6 {
		t.Errorf("notifications = %d, want 6", len(notes))
	}
	st := w.Stats()
	// Every executed store traps: hits + misses = all stores.
	if st.Hits != 6 {
		t.Errorf("hits = %d", st.Hits)
	}
	if st.Misses == 0 {
		t.Error("loop induction stores should be misses")
	}
	if w.Traps != st.Hits+st.Misses {
		t.Errorf("traps %d != hits+misses %d", w.Traps, st.Hits+st.Misses)
	}
}

func TestEveryStoreCostsTrapTime(t *testing.T) {
	// Even with zero monitors, the patched program pays the trap cost on
	// every store — the paper's core complaint about TrapPatch.
	mPlain, err := kernel.NewMachine(mustImage(t), arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	if err := mPlain.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	m, res := patched(t)
	w := Attach(m, res, nil)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	stores := w.Traps
	if stores == 0 {
		t.Fatal("no traps")
	}
	extra := m.CPU.Cycles - mPlain.CPU.Cycles
	perStore := float64(extra) / float64(stores)
	// TPFaultHandler+Lookup ≈ 104.75µs ≈ 4190 cycles.
	if perStore < 3800 || perStore > 4600 {
		t.Errorf("per-store trap cost = %.0f cycles, want ≈4190", perStore)
	}
}

func mustImage(t *testing.T) *asm.Image {
	t.Helper()
	img, err := minic.CompileToImage(src)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBadTrapCode(t *testing.T) {
	m, res := patched(t)
	w := Attach(m, res, nil)
	if err := w.onTrap(m, len(res.Table)+5, 0); err == nil {
		t.Error("out-of-table trap code should error")
	}
}

func TestUpdateCosts(t *testing.T) {
	m, res := patched(t)
	w := Attach(m, res, nil)
	before := m.CPU.Cycles
	_ = w.InstallMonitor(arch.GlobalBase, arch.GlobalBase+4)
	_ = w.RemoveMonitor(arch.GlobalBase, arch.GlobalBase+4)
	got := m.CPU.Cycles - before
	want := 2 * arch.MicrosToCycles(22) // two SoftwareUpdates
	if got != want {
		t.Errorf("update cost = %d cycles, want %d", got, want)
	}
}
