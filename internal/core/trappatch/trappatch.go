// Package trappatch implements the paper's TrapPatch WMS strategy
// (§3.3, §7.1.3, Figure 5): at compile time, every write instruction is
// replaced by a trap instruction — the mechanism UNIX debuggers like gdb
// and dbx use for breakpoints. At run time a user-level trap handler
// looks up the would-be store's target in the software mapping, delivers
// a notification on hits, emulates the store, and continues.
//
// Every store traps, hit or miss, which is why the paper finds TrapPatch
// "unacceptably slow for most debugging applications": the per-write
// cost is TPFaultHandler_τ + SoftwareLookup_τ ≈ 105 µs on the paper's
// SPARCstation model.
package trappatch

import (
	"fmt"

	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/core/wms"
	"edb/internal/isa"
	"edb/internal/kernel"
)

// maxPatchedStores is the capacity of the trap side table (the TRAP
// immediate is 16 bits).
const maxPatchedStores = 1 << 15

// PatchResult records the store → trap rewriting so the run-time handler
// can emulate the original instructions.
type PatchResult struct {
	// Table maps trap code → original store instruction.
	Table []asm.Inst
	// Patched counts rewritten stores.
	Patched int
}

// Patch rewrites every store instruction in the program into a TRAP
// whose immediate indexes the side table. The program is mutated in
// place (compile a fresh program per strategy). Instruction counts and
// label positions are unchanged: the rewrite is one word for one word.
func Patch(p *asm.Program) (*PatchResult, error) {
	res := &PatchResult{}
	for _, f := range p.Funcs {
		for i := range f.Body {
			in := &f.Body[i]
			if in.Pseudo != asm.PNone || in.Op != isa.SW {
				continue
			}
			if len(res.Table) >= maxPatchedStores {
				return nil, fmt.Errorf("trappatch: more than %d stores", maxPatchedStores)
			}
			code := int32(len(res.Table))
			res.Table = append(res.Table, *in)
			*in = asm.I(isa.TRAP, 0, 0, code)
			res.Patched++
		}
	}
	return res, nil
}

// WMS is a TrapPatch write monitor service attached to one machine
// running a patched image.
type WMS struct {
	m      *kernel.Machine
	svc    *wms.Service
	notify wms.Notifier
	table  []asm.Inst

	updCost    uint64
	lookupCost uint64

	// Traps counts delivered store traps (every executed store).
	Traps uint64
}

// Attach wires the TrapPatch WMS to a machine whose image was built from
// a program rewritten by Patch.
func Attach(m *kernel.Machine, res *PatchResult, notify wms.Notifier) *WMS {
	w := &WMS{
		m: m, notify: notify, table: res.Table,
		updCost:    arch.MicrosToCycles(22),   // SoftwareUpdate_τ
		lookupCost: arch.MicrosToCycles(2.75), // SoftwareLookup_τ
	}
	w.svc = wms.NewService(nil, nil)
	m.RegisterTrapHandler(w.onTrap)
	return w
}

// InstallMonitor updates the software mapping.
func (w *WMS) InstallMonitor(ba, ea arch.Addr) error {
	if err := w.svc.InstallMonitor(ba, ea); err != nil {
		return err
	}
	w.m.CPU.ChargeCycles(w.updCost)
	return nil
}

// RemoveMonitor updates the software mapping.
func (w *WMS) RemoveMonitor(ba, ea arch.Addr) error {
	if err := w.svc.RemoveMonitor(ba, ea); err != nil {
		return err
	}
	w.m.CPU.ChargeCycles(w.updCost)
	return nil
}

// onTrap handles one store trap: trap-delivery cost has already been
// charged by the kernel.
func (w *WMS) onTrap(m *kernel.Machine, code int, pc arch.Addr) error {
	if code < 0 || code >= len(w.table) {
		return fmt.Errorf("trappatch: trap code %d outside side table", code)
	}
	w.Traps++
	orig := w.table[code]
	in := isa.Inst{Op: orig.Op, RD: orig.RD, RS1: orig.RS1, RS2: orig.RS2, Imm: orig.Imm}

	// Emulate the original store, then classify.
	addr, err := m.EmulateStore(in)
	if err != nil {
		return err
	}
	w.m.CPU.ChargeCycles(w.lookupCost)
	if w.svc.CheckWrite(addr, addr+arch.WordBytes, pc) && w.notify != nil {
		w.notify(wms.Notification{BA: addr, EA: addr + arch.WordBytes, PC: pc})
	}
	return nil
}

// Stats returns the activity counters; every executed store is counted
// as a hit or a miss, exactly as in the paper's model.
func (w *WMS) Stats() wms.Stats { return w.svc.Stats() }
