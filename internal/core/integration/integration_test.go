// Package integration_test runs the same debuggee and monitor session
// under all four live WMS strategies on the simulated machine and checks
// that (a) they observe identical monitor hits, (b) program semantics
// are unchanged, and (c) measured cycle overheads line up with the
// paper's analytical models (§7).
package integration_test

import (
	"math"
	"testing"

	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/core/codepatch"
	"edb/internal/core/nh"
	"edb/internal/core/trappatch"
	"edb/internal/core/vmwms"
	"edb/internal/core/wms"
	"edb/internal/hw"
	"edb/internal/kernel"
	"edb/internal/minic"
	"edb/internal/model"
)

// The test program: a global `watched` written a known number of times,
// plus unrelated traffic (locals, a second global on the same page).
const src = `
int watched = 0;
int neighbour = 0;
int main() {
	int i;
	int local = 0;
	for (i = 0; i < 50; i = i + 1) {
		local = local + i;
		neighbour = neighbour + 1;
		if (i % 5 == 0) { watched = watched + i; }
	}
	print(watched);
	print(local);
	return 0;
}`

const wantWatchedHits = 10 // i = 0,5,...,45

type liveWMS interface {
	InstallMonitor(ba, ea arch.Addr) error
	RemoveMonitor(ba, ea arch.Addr) error
	Stats() wms.Stats
}

type runResult struct {
	notes  []wms.Notification
	cycles uint64
	out    string
	stats  wms.Stats
}

// baseline runs the program with no WMS attached.
func baseline(t *testing.T) runResult {
	t.Helper()
	img, err := minic.CompileToImage(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return runResult{cycles: m.CPU.Cycles, out: m.Out.String()}
}

func runStrategy(t *testing.T, name string) runResult {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	var tpRes *trappatch.PatchResult
	switch name {
	case "tp":
		if tpRes, err = trappatch.Patch(prog); err != nil {
			t.Fatal(err)
		}
	case "cp":
		if _, err = codepatch.Patch(prog); err != nil {
			t.Fatal(err)
		}
	}
	img, err := asm.Assemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}

	res := runResult{}
	notify := func(n wms.Notification) { res.notes = append(res.notes, n) }
	var svc liveWMS
	switch name {
	case "nh":
		svc = nh.Attach(m, hw.NumShippingRegisters, notify)
	case "vm":
		svc = vmwms.Attach(m, notify)
	case "tp":
		svc = trappatch.Attach(m, tpRes, notify)
	case "cp":
		cw, err := codepatch.Attach(m, notify)
		if err != nil {
			t.Fatal(err)
		}
		svc = cw
	}

	g := img.Data["watched"]
	if err := svc.InstallMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := svc.RemoveMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	res.cycles = m.CPU.Cycles
	res.out = m.Out.String()
	res.stats = svc.Stats()
	return res
}

func TestAllStrategiesSeeSameHits(t *testing.T) {
	base := baseline(t)
	for _, name := range []string{"nh", "vm", "tp", "cp"} {
		t.Run(name, func(t *testing.T) {
			r := runStrategy(t, name)
			if len(r.notes) != wantWatchedHits {
				t.Errorf("%s: %d notifications, want %d", name, len(r.notes), wantWatchedHits)
			}
			if r.out != base.out {
				t.Errorf("%s: program output changed:\n%q\nvs baseline\n%q", name, r.out, base.out)
			}
			// Every notification targets the watched global.
			for _, n := range r.notes {
				if n.BA < arch.GlobalBase || n.EA > arch.GlobalBase+64 {
					t.Errorf("%s: notification outside globals: %+v", name, n)
				}
				if n.PC == 0 {
					t.Errorf("%s: notification without PC", name)
				}
			}
		})
	}
}

func TestOverheadOrderingMatchesPaper(t *testing.T) {
	base := baseline(t)
	nhC := runStrategy(t, "nh").cycles
	vmC := runStrategy(t, "vm").cycles
	tpC := runStrategy(t, "tp").cycles
	cpC := runStrategy(t, "cp").cycles
	over := func(c uint64) float64 {
		return float64(c-base.cycles) / float64(base.cycles)
	}
	// CP << TP always; VM exceeds CP here (one protected page absorbing
	// every neighbour+watched write). This session is hit-dense (10 hits
	// in ~200 stores), so it is one of the paper's "most demanding"
	// sessions where CodePatch beats even NativeHardware (§9).
	if !(over(cpC) < over(tpC)) {
		t.Errorf("CP (%.3f) should be far cheaper than TP (%.3f)", over(cpC), over(tpC))
	}
	if !(over(vmC) > over(cpC)) {
		t.Errorf("VM (%.3f) should exceed CP (%.3f) with a shared hot page", over(vmC), over(cpC))
	}
	if !(over(nhC) > over(cpC)) {
		t.Errorf("NH (%.3f) should exceed CP (%.3f) on a hit-dense session", over(nhC), over(cpC))
	}
}

func TestNHCheapOnSparseHits(t *testing.T) {
	// The common case: a monitor that is rarely hit. NativeHardware is
	// then near-free while CodePatch still pays a lookup per store.
	sparse := `
	int watched = 0;
	int main() {
		int i;
		int acc = 0;
		for (i = 0; i < 400; i = i + 1) { acc = acc + i * 3; }
		watched = acc;
		print(watched);
		return 0;
	}`
	run := func(attach func(m *kernel.Machine, img *asm.Image) liveWMS, patchCP bool) (uint64, int) {
		prog, err := minic.Compile(sparse)
		if err != nil {
			t.Fatal(err)
		}
		if patchCP {
			if _, err := codepatch.Patch(prog); err != nil {
				t.Fatal(err)
			}
		}
		img, err := asm.Assemble(prog)
		if err != nil {
			t.Fatal(err)
		}
		m, err := kernel.NewMachine(img, arch.PageSize4K)
		if err != nil {
			t.Fatal(err)
		}
		svc := attach(m, img)
		g := img.Data["watched"]
		if err := svc.InstallMonitor(g.BA, g.EA); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return m.CPU.Cycles, int(svc.Stats().Hits)
	}
	nhCycles, nhHits := run(func(m *kernel.Machine, img *asm.Image) liveWMS {
		return nh.Attach(m, hw.NumShippingRegisters, nil)
	}, false)
	cpCycles, cpHits := run(func(m *kernel.Machine, img *asm.Image) liveWMS {
		w, err := codepatch.Attach(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}, true)
	if nhHits != 1 || cpHits != 1 {
		t.Fatalf("hits nh=%d cp=%d, want 1", nhHits, cpHits)
	}
	if nhCycles >= cpCycles {
		t.Errorf("NH (%d cycles) should beat CP (%d cycles) on sparse hits", nhCycles, cpCycles)
	}
}

func TestTrapPatchMeasuredVsModel(t *testing.T) {
	base := baseline(t)
	r := runStrategy(t, "tp")
	// Model: every executed store costs TPFaultHandler + SoftwareLookup.
	writes := r.stats.Hits + r.stats.Misses
	c := model.Counting{
		Hits: r.stats.Hits, Misses: r.stats.Misses,
		Installs: r.stats.Installs, Removes: r.stats.Removes,
	}
	predicted := model.Estimate(model.TP, c, model.Paper).Total()
	measured := arch.CyclesToSeconds(r.cycles - base.cycles)
	if writes == 0 {
		t.Fatal("no writes observed")
	}
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.10 {
		t.Errorf("TP measured %.6fs vs model %.6fs (%.1f%% off)", measured, predicted, rel*100)
	}
}

func TestCodePatchMeasuredVsModel(t *testing.T) {
	base := baseline(t)
	r := runStrategy(t, "cp")
	c := model.Counting{
		Hits: r.stats.Hits, Misses: r.stats.Misses,
		Installs: r.stats.Installs, Removes: r.stats.Removes,
	}
	predicted := model.Estimate(model.CP, c, model.Paper).Total()
	measured := arch.CyclesToSeconds(r.cycles - base.cycles)
	// CodePatch's two inserted instructions are not part of the model's
	// lookup time; allow a wider band.
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.15 {
		t.Errorf("CP measured %.6fs vs model %.6fs (%.1f%% off)", measured, predicted, rel*100)
	}
}

func TestNHMeasuredVsModel(t *testing.T) {
	base := baseline(t)
	r := runStrategy(t, "nh")
	c := model.Counting{Hits: r.stats.Hits}
	predicted := model.Estimate(model.NH, c, model.Paper).Total()
	measured := arch.CyclesToSeconds(r.cycles - base.cycles)
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.05 {
		t.Errorf("NH measured %.6fs vs model %.6fs (%.1f%% off)", measured, predicted, rel*100)
	}
}

func TestVMMeasuredVsModel(t *testing.T) {
	base := baseline(t)

	prog, _ := minic.Compile(src)
	img, _ := asm.Assemble(prog)
	m, _ := kernel.NewMachine(img, arch.PageSize4K)
	w := vmwms.Attach(m, nil)
	g := img.Data["watched"]
	if err := w.InstallMonitor(g.BA, g.EA); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	// For VM only faulting writes reach the service: hits plus
	// active-page misses.
	c := model.Counting{
		Hits: st.Hits, Installs: 1, Removes: 0,
		Protects:       [2]uint64{w.ProtectCalls, 0},
		Unprotects:     [2]uint64{w.UnprotectCalls, 0},
		ActivePageMiss: [2]uint64{st.Misses, 0},
	}
	predicted := model.Estimate(model.VM4K, c, model.Paper).Total()
	measured := arch.CyclesToSeconds(m.CPU.Cycles - base.cycles)
	if rel := math.Abs(measured-predicted) / predicted; rel > 0.05 {
		t.Errorf("VM measured %.6fs vs model %.6fs (%.1f%% off)", measured, predicted, rel*100)
	}
	// Both globals share a page: every neighbour write is an
	// active-page miss.
	if st.Misses == 0 {
		t.Error("expected active-page misses from the neighbour global")
	}
	if w.Faults != st.Hits+st.Misses {
		t.Errorf("faults %d != hits+misses %d", w.Faults, st.Hits+st.Misses)
	}
}

func TestNHRegisterExhaustion(t *testing.T) {
	prog, _ := minic.Compile(src)
	img, _ := asm.Assemble(prog)
	m, _ := kernel.NewMachine(img, arch.PageSize4K)
	svc := nh.Attach(m, hw.NumShippingRegisters, nil)
	base := arch.GlobalBase
	for i := 0; i < hw.NumShippingRegisters; i++ {
		if err := svc.InstallMonitor(base+arch.Addr(i*8), base+arch.Addr(i*8)+4); err != nil {
			t.Fatal(err)
		}
	}
	err := svc.InstallMonitor(base+1000, base+1004)
	if err != hw.ErrNoFreeRegister {
		t.Errorf("5th install: err = %v, want ErrNoFreeRegister", err)
	}
	// The paper's hypothetical: unlimited registers accept everything.
	m2, _ := kernel.NewMachine(img, arch.PageSize4K)
	svc2 := nh.Attach(m2, hw.Unlimited, nil)
	for i := 0; i < 1000; i++ {
		if err := svc2.InstallMonitor(base+arch.Addr(i*8), base+arch.Addr(i*8)+4); err != nil {
			t.Fatalf("unlimited install %d: %v", i, err)
		}
	}
	if svc2.Registers().Peak() != 1000 {
		t.Errorf("peak = %d", svc2.Registers().Peak())
	}
}

func TestCodePatchExpansion(t *testing.T) {
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := codepatch.Patch(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched == 0 {
		t.Fatal("nothing patched")
	}
	exp := res.Expansion()
	wantExp := float64(2*res.Patched) / float64(res.OriginalWords)
	if math.Abs(exp-wantExp) > 1e-9 {
		t.Errorf("expansion %.4f, want %.4f", exp, wantExp)
	}
	if exp <= 0 || exp > 0.6 {
		t.Errorf("expansion %.2f out of plausible range", exp)
	}
}

func TestTrapPatchCountsAllStores(t *testing.T) {
	prog, _ := minic.Compile(src)
	res, err := trappatch.Patch(prog)
	if err != nil {
		t.Fatal(err)
	}
	// After patching there must be no SW instructions left.
	for _, f := range prog.Funcs {
		for _, in := range f.Body {
			if in.Pseudo == asm.PNone && in.Op.String() == "sw" {
				t.Fatalf("unpatched store remains in %s", f.Name)
			}
		}
	}
	if res.Patched != len(res.Table) {
		t.Error("side table inconsistent")
	}
}

func TestPatchedProgramsProduceIdenticalOutput(t *testing.T) {
	base := baseline(t)
	// TrapPatch without any monitors: still traps on every store, and
	// must preserve semantics.
	prog, _ := minic.Compile(src)
	res, _ := trappatch.Patch(prog)
	img, _ := asm.Assemble(prog)
	m, _ := kernel.NewMachine(img, arch.PageSize4K)
	trappatch.Attach(m, res, nil)
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Out.String() != base.out {
		t.Errorf("trap-patched output %q != baseline %q", m.Out.String(), base.out)
	}

	// CodePatch, unattached: the stub makes every check a no-op.
	prog2, _ := minic.Compile(src)
	_, _ = codepatch.Patch(prog2)
	img2, _ := asm.Assemble(prog2)
	m2, _ := kernel.NewMachine(img2, arch.PageSize4K)
	if err := m2.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m2.Out.String() != base.out {
		t.Errorf("code-patched (unattached) output %q != baseline %q", m2.Out.String(), base.out)
	}
}
