package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"edb/internal/arch"
	"edb/internal/objects"
)

func sampleTrace() *Trace {
	tab := objects.NewTable()
	g := tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "counter", SizeBytes: 4})
	h := tab.Add(objects.Object{Kind: objects.KindHeap, Name: "heap#1", SizeBytes: 16,
		AllocCtx: []string{"main", "build"}})
	return &Trace{
		Program:    "demo",
		BaseCycles: 123456,
		Instret:    1000,
		Objects:    tab,
		Events: []Event{
			{Kind: EvInstall, Obj: g, BA: 0x400000, EA: 0x400004},
			{Kind: EvInstall, Obj: h, BA: 0x1000000, EA: 0x1000010},
			{Kind: EvWrite, BA: 0x400000, EA: 0x400004, PC: 0x1040},
			{Kind: EvWrite, BA: 0x1000008, EA: 0x100000c, PC: 0x1080},
			{Kind: EvRemove, Obj: h, BA: 0x1000000, EA: 0x1000010},
			{Kind: EvRemove, Obj: g, BA: 0x400000, EA: 0x400004},
		},
	}
}

func TestRoundtrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != tr.Program || got.BaseCycles != tr.BaseCycles || got.Instret != tr.Instret {
		t.Errorf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Errorf("events mismatch:\n got %v\nwant %v", got.Events, tr.Events)
	}
	if got.Objects.Len() != tr.Objects.Len() {
		t.Fatalf("object count mismatch")
	}
	for i := 1; i <= tr.Objects.Len(); i++ {
		a := tr.Objects.MustGet(objects.ID(i))
		b := got.Objects.MustGet(objects.ID(i))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("object %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestRoundtripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := objects.NewTable()
	var ids []objects.ID
	for i := 0; i < 50; i++ {
		ids = append(ids, tab.Add(objects.Object{
			Kind:      objects.Kind(rng.Intn(4)),
			Func:      "f",
			Name:      "x",
			SizeBytes: 4 * (1 + rng.Intn(100)),
		}))
	}
	tr := &Trace{Program: "rand", Objects: tab}
	installed := make(map[objects.ID]bool)
	for i := 0; i < 2000; i++ {
		ba := arch.Addr(0x400000 + 4*rng.Intn(100000))
		switch rng.Intn(3) {
		case 0:
			id := ids[rng.Intn(len(ids))]
			tr.Events = append(tr.Events, Event{Kind: EvInstall, Obj: id, BA: ba, EA: ba + 4})
			installed[id] = true
		case 1:
			tr.Events = append(tr.Events, Event{Kind: EvWrite, BA: ba, EA: ba + 4, PC: arch.Addr(0x1000 + 4*rng.Intn(1000))})
		case 2:
			for id := range installed {
				tr.Events = append(tr.Events, Event{Kind: EvRemove, Obj: id, BA: ba, EA: ba + 4})
				delete(installed, id)
				break
			}
		}
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatal("random roundtrip mismatch")
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestReadTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d should fail", cut)
		}
	}
}

func TestCounts(t *testing.T) {
	tr := sampleTrace()
	i, r, w := tr.Counts()
	if i != 2 || r != 2 || w != 2 {
		t.Errorf("Counts = %d/%d/%d", i, r, w)
	}
}

func TestBaseSeconds(t *testing.T) {
	tr := &Trace{BaseCycles: arch.ClockHz * 2}
	if got := tr.BaseSeconds(); got != 2.0 {
		t.Errorf("BaseSeconds = %v", got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	tab := objects.NewTable()
	id := tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "g"})

	cases := []struct {
		name   string
		events []Event
	}{
		{"empty range", []Event{{Kind: EvWrite, BA: 8, EA: 8}}},
		{"unaligned", []Event{{Kind: EvWrite, BA: 2, EA: 6}}},
		{"unknown object", []Event{{Kind: EvInstall, Obj: 99, BA: 4, EA: 8}}},
		{"remove before install", []Event{{Kind: EvRemove, Obj: id, BA: 4, EA: 8}}},
		{"unbalanced install", []Event{{Kind: EvInstall, Obj: id, BA: 4, EA: 8}}},
	}
	for _, c := range cases {
		tr := &Trace{Objects: tab, Events: c.events}
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# trace demo", "obj 1 global", "write", "install obj=1", "remove obj=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EvInstall.String() != "install" || EvRemove.String() != "remove" || EvWrite.String() != "write" {
		t.Error("event kind names wrong")
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestResolveWrites(t *testing.T) {
	tr := sampleTrace()
	// Add a write to the heap object's range *after* its removal: it
	// must resolve to no object.
	tr.Events = append(tr.Events,
		Event{Kind: EvWrite, BA: 0x1000008, EA: 0x100000c, PC: 0x10c0})
	resolved, total, err := tr.ResolveWrites()
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Errorf("totalWrites = %d, want 3", total)
	}
	if len(resolved) != len(tr.Events) {
		t.Fatalf("resolved length %d, want %d", len(resolved), len(tr.Events))
	}
	g, h := tr.Events[0].Obj, tr.Events[1].Obj
	want := []objects.ID{0, 0, g, h, 0, 0, 0}
	for i, w := range want {
		if resolved[i] != w {
			t.Errorf("resolved[%d] = %d, want %d", i, resolved[i], w)
		}
	}
}

func TestResolveWritesPageStraddle(t *testing.T) {
	// An object straddling a 4 KiB word-page boundary must resolve
	// writes on both sides.
	tab := objects.NewTable()
	g := tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "big", SizeBytes: 16})
	ba := arch.Addr(0x400000 + 4096 - 8)
	tr := &Trace{Program: "straddle", Objects: tab, Events: []Event{
		{Kind: EvInstall, Obj: g, BA: ba, EA: ba + 16},
		{Kind: EvWrite, BA: ba, EA: ba + 4, PC: 0x1000},       // low page
		{Kind: EvWrite, BA: ba + 12, EA: ba + 16, PC: 0x1004}, // high page
		{Kind: EvWrite, BA: ba + 16, EA: ba + 20, PC: 0x1008}, // just past
		{Kind: EvRemove, Obj: g, BA: ba, EA: ba + 16},
	}}
	resolved, total, err := tr.ResolveWrites()
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Errorf("totalWrites = %d, want 3", total)
	}
	if resolved[1] != g || resolved[2] != g {
		t.Errorf("straddling writes resolved to %d/%d, want %d", resolved[1], resolved[2], g)
	}
	if resolved[3] != 0 {
		t.Errorf("out-of-range write resolved to %d, want 0", resolved[3])
	}
}

func TestResolveWritesBadKind(t *testing.T) {
	tr := sampleTrace()
	tr.Events = append(tr.Events, Event{Kind: EventKind(99)})
	if _, _, err := tr.ResolveWrites(); err == nil {
		t.Error("unknown event kind should fail")
	}
}

func TestCompactness(t *testing.T) {
	// The binary format should stay well under 24 bytes/event for
	// realistic traces (varint deltas keep write events small).
	tr := sampleTrace()
	for i := 0; i < 10000; i++ {
		tr.Events = append(tr.Events, Event{Kind: EvWrite, BA: 0x400000, EA: 0x400004, PC: 0x2000})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(len(tr.Events))
	if perEvent > 16 {
		t.Errorf("binary format too fat: %.1f bytes/event", perEvent)
	}
}

func TestValidateExclusive(t *testing.T) {
	if err := sampleTrace().ValidateExclusive(); err != nil {
		t.Errorf("exclusive trace rejected: %v", err)
	}
	tab := objects.NewTable()
	a := tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "a"})
	b := tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "b"})
	tr := &Trace{Objects: tab, Events: []Event{
		{Kind: EvInstall, Obj: a, BA: 4, EA: 12},
		{Kind: EvInstall, Obj: b, BA: 8, EA: 16}, // word 8 double-owned
	}}
	if err := tr.ValidateExclusive(); err == nil {
		t.Error("overlapping live objects not rejected")
	}
	// Re-install after remove is fine: ownership moved, not shared.
	tr.Events = []Event{
		{Kind: EvInstall, Obj: a, BA: 4, EA: 12},
		{Kind: EvRemove, Obj: a, BA: 4, EA: 12},
		{Kind: EvInstall, Obj: b, BA: 8, EA: 16},
	}
	if err := tr.ValidateExclusive(); err != nil {
		t.Errorf("sequential ownership rejected: %v", err)
	}
}
