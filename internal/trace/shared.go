// SharedSource — an interning layer over a StreamSource.
//
// Opening a v3 stream decodes the header frame: program metadata plus
// the full object table, which is the dominant allocation cost of a
// streamed replay (every benchmark table holds thousands of interned
// strings). A SharedSource decodes that header exactly once and hands
// every subsequent Open a Stream that shares the same immutable table
// and header totals, positioned directly at the first block — repeated
// replays of one artifact (exp's per-(benchmark,scale) cache, serve's
// retry/hedge paths) skip the whole header decode.
//
// The shared object table must be treated as immutable by every
// consumer; the replay engines only ever read it.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"edb/internal/fault"
	"edb/internal/objects"
)

// sectionOpener is implemented by sources that can open their raw byte
// stream at an offset — what SharedSource needs to skip the header.
type sectionOpener interface {
	openRawAt(off int64) (io.ReadCloser, error)
}

// SharedSource wraps a StreamSource, decoding the header once and
// sharing the immutable object table across all Opens. It is safe for
// concurrent use.
type SharedSource struct {
	src StreamSource

	mu     sync.Mutex
	primed bool

	program    string
	baseCycles uint64
	instret    uint64
	objects    *objects.Table
	numBlocks  int
	numEvents  uint64
	numWrites  uint64
	headerEnd  int64
}

// NewSharedSource returns a SharedSource over src. The header is
// decoded on the first Open.
func NewSharedSource(src StreamSource) *SharedSource {
	if ss, ok := src.(*SharedSource); ok {
		return ss
	}
	return &SharedSource{src: src}
}

// Open returns an independent Stream over the source. The first call
// decodes the header; later calls reuse it and start at the first
// block. When the underlying source cannot seek past the header it
// falls back to a full open (still correct, just not interned).
func (ss *SharedSource) Open() (*Stream, error) {
	ss.mu.Lock()
	if !ss.primed {
		defer ss.mu.Unlock()
		s, err := ss.src.Open()
		if err != nil {
			return nil, err
		}
		ss.program, ss.baseCycles, ss.instret = s.Program, s.BaseCycles, s.Instret
		ss.objects = s.Objects
		ss.numBlocks, ss.numEvents, ss.numWrites = s.NumBlocks, s.NumEvents, s.NumWrites
		ss.headerEnd = s.d.off
		ss.primed = true
		return s, nil
	}
	ss.mu.Unlock()

	so, ok := ss.src.(sectionOpener)
	if !ok {
		return ss.src.Open()
	}
	// Keep chaos parity with OpenStream: a seeded read fault fires on
	// the interned path too.
	if err := fault.Inject(fault.SiteTraceRead, ""); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	rc, err := so.openRawAt(ss.headerEnd)
	if err != nil {
		return nil, err
	}
	return &Stream{
		Program:    ss.program,
		BaseCycles: ss.baseCycles,
		Instret:    ss.instret,
		Objects:    ss.objects,
		NumBlocks:  ss.numBlocks,
		NumEvents:  ss.numEvents,
		NumWrites:  ss.numWrites,
		d:          &decoder{r: bufio.NewReaderSize(rc, 1<<16), off: ss.headerEnd, remaining: -1},
		closer:     rc,
	}, nil
}
