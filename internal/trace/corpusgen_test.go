package trace_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"edb/internal/arch"
	"edb/internal/kernel"
	"edb/internal/minic"
	"edb/internal/objects"
	"edb/internal/progs"
	"edb/internal/trace"
	"edb/internal/tracer"
)

// TestGenerateFuzzCorpus regenerates the checked-in FuzzTraceRead seed
// corpus under testdata/fuzz/FuzzTraceRead: one entry per benchmark
// workload, derived from the real phase-1 trace but truncated (first
// 48 objects, first 256 events) so the corpus stays a few KiB per
// workload. Skipped unless EDB_REGEN_FUZZ_CORPUS=1 — the corpus is a
// committed artifact, not a per-run output.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("EDB_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set EDB_REGEN_FUZZ_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzTraceRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range progs.Names() {
		p, err := progs.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		img, err := minic.CompileToImage(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := kernel.NewMachine(img, arch.PageSize4K)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := tracer.New(m, name).Run(p.Fuel)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		small := truncateTrace(tr, 48, 256)
		var buf writerBuf
		if err := small.Write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		entry := "go test fuzz v1\n[]byte(" + strconv.Quote(string(buf.b)) + ")\n"
		path := filepath.Join(dir, "workload-"+name)
		if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes serialized)\n", path, len(buf.b))

		// The same truncated trace in the columnar v3 format, blocked
		// small (64 events/block) so the seed spans several blocks.
		var v3 writerBuf
		if err := small.WriteV3Blocks(&v3, 64); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		entry = "go test fuzz v1\n[]byte(" + strconv.Quote(string(v3.b)) + ")\n"
		path = filepath.Join(dir, "workload-"+name+"-v3")
		if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes serialized)\n", path, len(v3.b))
	}
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// truncateTrace keeps the header plus the first maxObjs objects and
// maxEvents events — enough real structure to seed the fuzzer without
// committing megabytes. Object references past the truncated table are
// fine: the codec does not cross-check them.
func truncateTrace(tr *trace.Trace, maxObjs, maxEvents int) *trace.Trace {
	tab := objects.NewTable()
	for i, o := range tr.Objects.All() {
		if i >= maxObjs {
			break
		}
		tab.Add(o) // Add reassigns IDs in the original order
	}
	out := &trace.Trace{
		Program:    tr.Program,
		BaseCycles: tr.BaseCycles,
		Instret:    tr.Instret,
		Objects:    tab,
	}
	n := len(tr.Events)
	if n > maxEvents {
		n = maxEvents
	}
	out.Events = append(out.Events, tr.Events[:n]...)
	return out
}
