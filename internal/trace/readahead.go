// Windowed readahead for FileSource: a double-buffered background
// prefetcher that keeps the next file window in flight while the
// decoder chews on the current one, overlapping disk I/O with block
// decode. An optional mmap mode maps the whole file instead (the page
// cache then does the readahead and the decoder reads straight from
// the mapping).
package trace

import (
	"bytes"
	"io"
	"os"
	"sync"
)

// DefaultReadaheadBytes is the prefetch window FileSource uses unless
// configured otherwise. Two windows are in flight at a time, so the
// steady-state buffer cost of a streamed replay is twice this.
const DefaultReadaheadBytes = 512 << 10

// FileSourceOptions configures how FileSource reads the file.
type FileSourceOptions struct {
	// ReadaheadBytes is the prefetch window size (double-buffered);
	// 0 selects DefaultReadaheadBytes, negative disables readahead and
	// reads the file directly.
	ReadaheadBytes int
	// Mmap maps the file into memory instead of streaming reads
	// (POSIX-only; silently falls back to reads where unsupported).
	Mmap bool
}

type fileSourceOpt struct {
	path string
	opts FileSourceOptions
}

// FileSourceWith is FileSource with explicit I/O options.
func FileSourceWith(path string, opts FileSourceOptions) StreamSource {
	return fileSourceOpt{path: path, opts: opts}
}

func (p fileSourceOpt) Open() (*Stream, error) {
	rc, err := p.openRaw()
	if err != nil {
		return nil, err
	}
	s, err := OpenStream(rc)
	if err != nil {
		rc.Close()
		return nil, err
	}
	s.closer = rc
	return s, nil
}

// openRaw opens the file behind the configured I/O strategy, so
// Materialize and SharedSource share one open path with Open.
func (p fileSourceOpt) openRaw() (io.ReadCloser, error) {
	return p.openRawAt(0)
}

// openRawAt opens the byte stream positioned at off.
func (p fileSourceOpt) openRawAt(off int64) (io.ReadCloser, error) {
	if p.opts.Mmap {
		if data, close, err := mmapFile(p.path); err == nil {
			return &mmapReader{Reader: *bytes.NewReader(data[off:]), close: close}, nil
		}
		// Unsupported platform or mapping failure: fall through to the
		// plain read path — mmap is an optimisation, never a contract.
	}
	f, err := os.Open(p.path)
	if err != nil {
		return nil, err
	}
	if off != 0 {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
	}
	if p.opts.ReadaheadBytes < 0 {
		return f, nil
	}
	window := p.opts.ReadaheadBytes
	if window == 0 {
		window = DefaultReadaheadBytes
	}
	return newPrefetchReader(f, window), nil
}

// mmapReader adapts a mapped region to io.ReadCloser; Close unmaps.
type mmapReader struct {
	bytes.Reader
	close func() error
}

func (m *mmapReader) Close() error {
	if m.close == nil {
		return nil
	}
	c := m.close
	m.close = nil
	return c()
}

// chunk is one prefetched window handed from the producer goroutine to
// the reader; err (delivered after the bytes) ends the stream.
type chunk struct {
	b   []byte
	err error
}

// prefetchReader overlaps file I/O with consumption: a producer
// goroutine fills one window buffer while the consumer drains the
// other (double buffering — two windows bound the memory cost). The
// producer parks as soon as both windows are in flight, so a slow
// consumer never grows the footprint.
type prefetchReader struct {
	src    io.ReadCloser
	filled chan chunk
	free   chan []byte
	stop   chan struct{}
	wg     sync.WaitGroup

	cur     []byte // unread remainder of the current window
	curBuf  []byte // current window's backing buffer (returned to free)
	err     error  // sticky, delivered once buffered windows drain
	stopped bool
}

func newPrefetchReader(src io.ReadCloser, window int) *prefetchReader {
	p := &prefetchReader{
		src:    src,
		filled: make(chan chunk, 2),
		free:   make(chan []byte, 2),
		stop:   make(chan struct{}),
	}
	p.free <- make([]byte, window)
	p.free <- make([]byte, window)
	p.wg.Add(1)
	go p.produce()
	return p
}

// produce fills free window buffers from the file until EOF, error, or
// Close. Every send also selects on stop, so Close never deadlocks
// against a parked producer.
func (p *prefetchReader) produce() {
	defer p.wg.Done()
	for {
		var buf []byte
		select {
		case buf = <-p.free:
		case <-p.stop:
			return
		}
		n, err := io.ReadFull(p.src, buf)
		if n > 0 {
			select {
			case p.filled <- chunk{b: buf[:n]}:
			case <-p.stop:
				return
			}
		} else {
			// Window unused: recycle it so the channel accounting
			// stays balanced (nobody will return this one).
			p.free <- buf
		}
		if err != nil {
			if err == io.ErrUnexpectedEOF {
				err = io.EOF
			}
			select {
			case p.filled <- chunk{err: err}:
			case <-p.stop:
			}
			return
		}
	}
}

func (p *prefetchReader) Read(b []byte) (int, error) {
	for len(p.cur) == 0 {
		if p.err != nil {
			return 0, p.err
		}
		if p.curBuf != nil {
			p.free <- p.curBuf
			p.curBuf = nil
		}
		c := <-p.filled
		if c.err != nil {
			p.err = c.err
			return 0, p.err
		}
		p.cur, p.curBuf = c.b, c.b[:cap(c.b)]
	}
	n := copy(b, p.cur)
	p.cur = p.cur[n:]
	return n, nil
}

// Close stops the producer and closes the underlying file.
func (p *prefetchReader) Close() error {
	if p.stopped {
		return nil
	}
	p.stopped = true
	close(p.stop)
	p.wg.Wait()
	return p.src.Close()
}
