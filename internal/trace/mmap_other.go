//go:build !unix

package trace

import "errors"

// mmapFile is unsupported off POSIX; FileSource falls back to the
// windowed-readahead read path.
func mmapFile(path string) ([]byte, func() error, error) {
	return nil, nil, errors.New("trace: mmap unsupported on this platform")
}
