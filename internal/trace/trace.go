// Package trace defines the program event trace — the output of phase 1
// of the paper's experiment (Figure 1) — and binary/text codecs for it.
//
// A trace carries exactly the three event kinds of §6:
//
//	InstallMonitorEvent [ObjectDesc, BA, EA]
//	RemoveMonitorEvent  [ObjectDesc, BA, EA]
//	WriteEvent          [BA, EA]   (plus the writing PC, which the WMS
//	                                interface hands to MonitorNotification)
//
// The trace is independent of any particular monitor session: install
// and remove events are recorded for *every* program object that any
// session type could select, and phase 2 replays one trace against many
// sessions.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"edb/internal/arch"
	"edb/internal/objects"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds.
const (
	EvInstall EventKind = iota
	EvRemove
	EvWrite
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvInstall:
		return "install"
	case EvRemove:
		return "remove"
	case EvWrite:
		return "write"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	Kind EventKind
	// Obj identifies the program object for install/remove events.
	Obj objects.ID
	// BA, EA delimit the written or monitored range [BA, EA).
	BA, EA arch.Addr
	// PC is the program counter of the write (write events only).
	PC arch.Addr
}

// Trace is one complete program event trace plus run metadata.
type Trace struct {
	// Program names the benchmark.
	Program string
	// BaseCycles is the uninstrumented run's cycle count (the paper's
	// "base program execution time" denominator).
	BaseCycles uint64
	// Instret is the retired instruction count.
	Instret uint64
	// Objects is the object table events refer to.
	Objects *objects.Table
	// Events is the event stream in execution order.
	Events []Event
}

// BaseSeconds returns the base execution time in simulated seconds.
func (t *Trace) BaseSeconds() float64 { return arch.CyclesToSeconds(t.BaseCycles) }

// Counts tallies events by kind.
func (t *Trace) Counts() (installs, removes, writes int) {
	for _, e := range t.Events {
		switch e.Kind {
		case EvInstall:
			installs++
		case EvRemove:
			removes++
		case EvWrite:
			writes++
		}
	}
	return
}

const (
	magic   = "EDBT"
	version = 1
)

// Write serialises the trace in the binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	putString := func(s string) error {
		if err := putUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := putUvarint(version); err != nil {
		return err
	}
	if err := putString(t.Program); err != nil {
		return err
	}
	if err := putUvarint(t.BaseCycles); err != nil {
		return err
	}
	if err := putUvarint(t.Instret); err != nil {
		return err
	}

	// Object table.
	objs := t.Objects.All()
	if err := putUvarint(uint64(len(objs))); err != nil {
		return err
	}
	for _, o := range objs {
		if err := bw.WriteByte(byte(o.Kind)); err != nil {
			return err
		}
		if err := putString(o.Func); err != nil {
			return err
		}
		if err := putString(o.Name); err != nil {
			return err
		}
		if err := putUvarint(uint64(o.SizeBytes)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(o.AllocCtx))); err != nil {
			return err
		}
		for _, f := range o.AllocCtx {
			if err := putString(f); err != nil {
				return err
			}
		}
	}

	// Event stream.
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	for _, e := range t.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if e.Kind != EvWrite {
			if err := putUvarint(uint64(e.Obj)); err != nil {
				return err
			}
		}
		if err := putUvarint(uint64(e.BA)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.EA - e.BA)); err != nil {
			return err
		}
		if e.Kind == EvWrite {
			if err := putUvarint(uint64(e.PC)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getString := func() (string, error) {
		n, err := getUvarint()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	v, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	t := &Trace{Objects: objects.NewTable()}
	if t.Program, err = getString(); err != nil {
		return nil, err
	}
	if t.BaseCycles, err = getUvarint(); err != nil {
		return nil, err
	}
	if t.Instret, err = getUvarint(); err != nil {
		return nil, err
	}

	nObjs, err := getUvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nObjs; i++ {
		var o objects.Object
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		o.Kind = objects.Kind(kb)
		if o.Func, err = getString(); err != nil {
			return nil, err
		}
		if o.Name, err = getString(); err != nil {
			return nil, err
		}
		sz, err := getUvarint()
		if err != nil {
			return nil, err
		}
		o.SizeBytes = int(sz)
		nCtx, err := getUvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nCtx; j++ {
			f, err := getString()
			if err != nil {
				return nil, err
			}
			o.AllocCtx = append(o.AllocCtx, f)
		}
		t.Objects.Add(o)
	}

	nEvents, err := getUvarint()
	if err != nil {
		return nil, err
	}
	t.Events = make([]Event, 0, nEvents)
	for i := uint64(0); i < nEvents; i++ {
		var e Event
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		e.Kind = EventKind(kb)
		if e.Kind > EvWrite {
			return nil, fmt.Errorf("trace: bad event kind %d", kb)
		}
		if e.Kind != EvWrite {
			obj, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.Obj = objects.ID(obj)
		}
		ba, err := getUvarint()
		if err != nil {
			return nil, err
		}
		length, err := getUvarint()
		if err != nil {
			return nil, err
		}
		e.BA = arch.Addr(ba)
		e.EA = e.BA + arch.Addr(length)
		if e.Kind == EvWrite {
			pc, err := getUvarint()
			if err != nil {
				return nil, err
			}
			e.PC = arch.Addr(pc)
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// WriteText renders the trace human-readably, one event per line.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s base_cycles=%d instret=%d objects=%d events=%d\n",
		t.Program, t.BaseCycles, t.Instret, t.Objects.Len(), len(t.Events))
	for _, o := range t.Objects.All() {
		fmt.Fprintf(bw, "obj %d %s func=%q name=%q size=%d ctx=%v\n",
			o.ID, o.Kind, o.Func, o.Name, o.SizeBytes, o.AllocCtx)
	}
	for _, e := range t.Events {
		switch e.Kind {
		case EvWrite:
			fmt.Fprintf(bw, "write %#x..%#x pc=%#x\n", uint32(e.BA), uint32(e.EA), uint32(e.PC))
		default:
			fmt.Fprintf(bw, "%s obj=%d %#x..%#x\n", e.Kind, e.Obj, uint32(e.BA), uint32(e.EA))
		}
	}
	return bw.Flush()
}

// wordOwners maps the words of one 4 KiB region to the object that owns
// each word, for ResolveWrites.
type wordOwners [1024]objects.ID

// ResolveWrites performs the session-independent half of a phase-2
// replay in one sequential pass: for every event it records which live
// object (if any) owns the written word at that instant. The result is
// parallel to Events — entry i is the object hit by Events[i] when it is
// a write, and 0 for installs, removes, and writes to unmonitored words.
// It also tallies the total number of write events.
//
// The resolution depends only on the trace (via the exclusivity
// invariant, ValidateExclusive), never on any monitor session, so it can
// be computed once and then broadcast to any number of per-session-shard
// replay workers (internal/sim.Sharded): the event stream is read once
// here, and shard workers consume the immutable (events, resolved) pair
// by index without re-deriving the word→object map.
func (t *Trace) ResolveWrites() (resolved []objects.ID, totalWrites uint64, err error) {
	resolved = make([]objects.ID, len(t.Events))
	words := make(map[uint32]*wordOwners)
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case EvInstall:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				pn := uint32(a) >> 12
				pg := words[pn]
				if pg == nil {
					pg = &wordOwners{}
					words[pn] = pg
				}
				pg[(a%4096)/4] = e.Obj
			}
		case EvRemove:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				pg := words[uint32(a)>>12]
				if pg == nil {
					continue
				}
				idx := (a % 4096) / 4
				if pg[idx] == e.Obj {
					pg[idx] = 0
				}
			}
		case EvWrite:
			totalWrites++
			if pg := words[uint32(e.BA)>>12]; pg != nil {
				resolved[i] = pg[(e.BA%4096)/4]
			}
		default:
			return nil, 0, fmt.Errorf("trace: unknown event kind %d", e.Kind)
		}
	}
	return resolved, totalWrites, nil
}

// Validate checks internal consistency: object references resolve,
// ranges are well-formed and word-aligned, and removes match installs.
func (t *Trace) Validate() error {
	active := make(map[objects.ID]int)
	for i, e := range t.Events {
		if e.EA <= e.BA {
			return fmt.Errorf("trace: event %d has empty range %v..%v", i, e.BA, e.EA)
		}
		if !arch.Aligned(e.BA) {
			return fmt.Errorf("trace: event %d range not word aligned", i)
		}
		switch e.Kind {
		case EvInstall, EvRemove:
			if _, ok := t.Objects.Get(e.Obj); !ok {
				return fmt.Errorf("trace: event %d references unknown object %d", i, e.Obj)
			}
			if e.Kind == EvInstall {
				active[e.Obj]++
			} else {
				active[e.Obj]--
				if active[e.Obj] < 0 {
					return fmt.Errorf("trace: event %d removes never-installed object %d", i, e.Obj)
				}
			}
		}
	}
	for id, n := range active {
		if n != 0 {
			return fmt.Errorf("trace: object %d left with %d active installs", id, n)
		}
	}
	return nil
}

// ValidateExclusive additionally checks the exclusivity invariant the
// phase-2 simulator relies on: at any instant, each word of memory is
// covered by at most one live object. Real traces satisfy this by
// construction (frames nest, heap blocks are disjoint, globals are laid
// out without overlap); this check exists for synthetic traces.
func (t *Trace) ValidateExclusive() error {
	owner := make(map[arch.Addr]objects.ID)
	for i, e := range t.Events {
		switch e.Kind {
		case EvInstall:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				if prev, taken := owner[a]; taken && prev != e.Obj {
					return fmt.Errorf("trace: event %d: word %#x owned by both object %d and %d",
						i, uint32(a), prev, e.Obj)
				}
				owner[a] = e.Obj
			}
		case EvRemove:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				delete(owner, a)
			}
		}
	}
	return nil
}
