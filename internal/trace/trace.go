// Package trace defines the program event trace — the output of phase 1
// of the paper's experiment (Figure 1) — and binary/text codecs for it.
//
// A trace carries exactly the three event kinds of §6:
//
//	InstallMonitorEvent [ObjectDesc, BA, EA]
//	RemoveMonitorEvent  [ObjectDesc, BA, EA]
//	WriteEvent          [BA, EA]   (plus the writing PC, which the WMS
//	                                interface hands to MonitorNotification)
//
// The trace is independent of any particular monitor session: install
// and remove events are recorded for *every* program object that any
// session type could select, and phase 2 replays one trace against many
// sessions.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"edb/internal/arch"
	"edb/internal/fault"
	"edb/internal/objects"
)

// EventKind discriminates trace events.
type EventKind uint8

// Event kinds.
const (
	EvInstall EventKind = iota
	EvRemove
	EvWrite
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvInstall:
		return "install"
	case EvRemove:
		return "remove"
	case EvWrite:
		return "write"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	Kind EventKind
	// Obj identifies the program object for install/remove events.
	Obj objects.ID
	// BA, EA delimit the written or monitored range [BA, EA).
	BA, EA arch.Addr
	// PC is the program counter of the write (write events only).
	PC arch.Addr
}

// Trace is one complete program event trace plus run metadata.
type Trace struct {
	// Program names the benchmark.
	Program string
	// BaseCycles is the uninstrumented run's cycle count (the paper's
	// "base program execution time" denominator).
	BaseCycles uint64
	// Instret is the retired instruction count.
	Instret uint64
	// Objects is the object table events refer to.
	Objects *objects.Table
	// Events is the event stream in execution order.
	Events []Event
}

// BaseSeconds returns the base execution time in simulated seconds.
func (t *Trace) BaseSeconds() float64 { return arch.CyclesToSeconds(t.BaseCycles) }

// Counts tallies events by kind.
func (t *Trace) Counts() (installs, removes, writes int) {
	for _, e := range t.Events {
		switch e.Kind {
		case EvInstall:
			installs++
		case EvRemove:
			removes++
		case EvWrite:
			writes++
		}
	}
	return
}

// Binary format. Version 2 (current) is corruption-safe:
//
//	"EDBT"  uvarint(version=2)  uvarint(len(payload))  crc32-IEEE(4B LE)
//	payload...
//
// where the payload is the version-1 body (program, base cycles,
// instret, object table, event stream) and the CRC covers exactly the
// payload bytes. Read verifies the checksum before decoding, bounds
// every count against the bytes that could plausibly back it, and
// reports failures with the absolute byte offset of the offending
// field. Version-1 files (no length/checksum, body streamed directly
// after the version) are still read, as are version-3 columnar
// streaming files (colstore.go) — Write keeps emitting version 2;
// WriteV3 emits the columnar format.
const (
	magic     = "EDBT"
	version   = 2
	versionV1 = 1

	// maxStringLen caps decoded string lengths.
	maxStringLen = 1 << 20
	// maxAllocCtx caps an object's allocation-context frame count.
	maxAllocCtx = 1 << 12
	// maxObjectSize caps a decoded object's SizeBytes (the simulated
	// machine is 32-bit; nothing larger can exist).
	maxObjectSize = 1 << 32
	// maxPayload caps the version-2 payload length (and therefore the
	// decoder's single allocation).
	maxPayload = 1 << 31
	// maxPrealloc caps count-driven slice preallocation: a version-1
	// stream declares counts before the bytes that back them, so the
	// decoder never trusts a declared count for more than this many
	// entries up front — larger (legitimate) streams grow by append.
	maxPrealloc = 1 << 16

	// minObjectBytes / minEventBytes are the smallest possible encodings
	// of one object-table entry (kind + 2 string lengths + size + ctx
	// count) and one event (kind + 3 uvarints); version-2 count caps are
	// derived from these and the remaining payload bytes.
	minObjectBytes = 5
	minEventBytes  = 4
)

// Write serialises the trace in the current (version 2) binary format:
// the body is encoded to an in-memory payload, checksummed, and written
// behind a length-prefixed header so readers can verify integrity
// before decoding.
//
// Deprecated: use WriteTo(w, t, WriteOptions{}).
func (t *Trace) Write(w io.Writer) error { return WriteTo(w, t, WriteOptions{}) }

// writeV2 is the version-2 serialisation behind WriteTo.
func (t *Trace) writeV2(w io.Writer) error {
	if err := fault.Inject(fault.SiteTraceWrite, t.Program); err != nil {
		return fmt.Errorf("trace: writing %s: %w", t.Program, err)
	}
	var body bytes.Buffer
	body.Grow(64 + 8*len(t.Events))
	t.writeBody(&body)
	payload := body.Bytes()
	sum := crc32.ChecksumIEEE(payload)
	// Chaos hook: flip one payload bit *after* the checksum is taken,
	// modelling at-rest corruption that Read must detect.
	fault.Mutate(fault.SiteTraceCorrupt, t.Program, payload)

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(scratch[:], version)
	n += binary.PutUvarint(scratch[n:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(scratch[n:], sum)
	if _, err := bw.Write(scratch[:n+4]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// writeMeta encodes the trace metadata — program, counters, object
// table — shared by the v1/v2 body and the v3 header frame.
func (t *Trace) writeMeta(buf *bytes.Buffer) {
	writeMetaRaw(buf, t.Program, t.BaseCycles, t.Instret, t.Objects)
}

// writeMetaRaw is writeMeta without a Trace value: the incremental
// Writer serialises its header from a live object table and counters.
// bytes.Buffer writes cannot fail, so no errors flow here.
func writeMetaRaw(buf *bytes.Buffer, program string, baseCycles, instret uint64, tab *objects.Table) {
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		buf.WriteString(s)
	}
	putString(program)
	putUvarint(baseCycles)
	putUvarint(instret)

	// Object table.
	objs := tab.All()
	putUvarint(uint64(len(objs)))
	for _, o := range objs {
		buf.WriteByte(byte(o.Kind))
		putString(o.Func)
		putString(o.Name)
		putUvarint(uint64(o.SizeBytes))
		putUvarint(uint64(len(o.AllocCtx)))
		for _, f := range o.AllocCtx {
			putString(f)
		}
	}
}

// writeBody encodes the version-1/2 trace body into buf: the metadata
// followed by the interleaved event stream.
func (t *Trace) writeBody(buf *bytes.Buffer) {
	t.writeMeta(buf)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}

	// Event stream.
	putUvarint(uint64(len(t.Events)))
	for _, e := range t.Events {
		buf.WriteByte(byte(e.Kind))
		if e.Kind != EvWrite {
			putUvarint(uint64(e.Obj))
		}
		putUvarint(uint64(e.BA))
		putUvarint(uint64(e.EA - e.BA))
		if e.Kind == EvWrite {
			putUvarint(uint64(e.PC))
		}
	}
}

// decoder reads the trace body while tracking the absolute file offset
// of every field, so malformed input is rejected with a byte-precise
// diagnostic. remaining, when non-negative, bounds how many body bytes
// can still exist (version 2 knows the payload length up front) and is
// used to reject count fields no stream of that size could back.
type decoder struct {
	r   *bufio.Reader
	off int64 // absolute offset of the next unread byte
	// remaining body bytes, or -1 when unknown (version-1 streams).
	remaining int64
}

func (d *decoder) errAt(off int64, format string, args ...any) error {
	return fmt.Errorf("trace: byte offset "+fmt.Sprint(off)+": "+format, args...)
}

func (d *decoder) readByte(what string) (byte, error) {
	b, err := d.r.ReadByte()
	if err != nil {
		return 0, d.errAt(d.off, "reading %s: %w", what, noEOF(err))
	}
	d.off++
	if d.remaining >= 0 {
		d.remaining--
	}
	return b, nil
}

func (d *decoder) uvarint(what string) (uint64, error) {
	start := d.off
	var v uint64
	var shift uint
	for {
		b, err := d.r.ReadByte()
		if err != nil {
			return 0, d.errAt(start, "reading %s: %w", what, noEOF(err))
		}
		d.off++
		if d.remaining >= 0 {
			d.remaining--
		}
		if shift >= 64 || (shift == 63 && b > 1) {
			return 0, d.errAt(start, "%s: uvarint overflows 64 bits", what)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

func (d *decoder) str(what string) (string, error) {
	start := d.off
	n, err := d.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", d.errAt(start, "%s length %d exceeds cap %d", what, n, maxStringLen)
	}
	if d.remaining >= 0 && int64(n) > d.remaining {
		return "", d.errAt(start, "%s length %d exceeds %d remaining payload bytes",
			what, n, d.remaining)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", d.errAt(d.off, "reading %s: %w", what, noEOF(err))
	}
	d.off += int64(n)
	if d.remaining >= 0 {
		d.remaining -= int64(n)
	}
	return string(buf), nil
}

// count reads a count field and sanity-checks it: each counted entry
// occupies at least minBytes, so a count no remaining stream could back
// is rejected before any allocation happens.
func (d *decoder) count(what string, minBytes int64) (uint64, error) {
	start := d.off
	n, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if d.remaining >= 0 && int64(n) > d.remaining/minBytes {
		return 0, d.errAt(start,
			"%s %d needs >= %d bytes but only %d payload bytes remain",
			what, n, int64(n)*minBytes, d.remaining)
	}
	return n, nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a
// structure, running out of bytes is always truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// prealloc bounds a count-driven preallocation.
func prealloc(n uint64) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// Read deserialises a trace written by Write or WriteV3. It reads the
// checksummed version-2 format, legacy version-1 files, and the
// columnar streaming version-3 format (materialised through the block
// reader; use OpenStream to replay v3 without materialising). Malformed
// input — truncation, flipped bits, counts the stream cannot back —
// is rejected with an error naming the byte offset of the offending
// field; version-2 corruption is caught by the payload checksum before
// decoding begins.
func Read(r io.Reader) (*Trace, error) {
	if err := fault.Inject(fault.SiteTraceRead, ""); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: byte offset 0: reading magic: %w", noEOF(err))
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: byte offset 0: bad magic %q", head)
	}
	d := &decoder{r: br, off: int64(len(magic)), remaining: -1}
	v, err := d.uvarint("version")
	if err != nil {
		return nil, err
	}
	switch v {
	case versionV1:
		// Legacy stream: the body follows directly, length unknown.
		return d.readBody()
	case version:
		lenOff := d.off
		plen, err := d.uvarint("payload length")
		if err != nil {
			return nil, err
		}
		if plen > maxPayload {
			return nil, d.errAt(lenOff, "payload length %d exceeds cap %d", plen, maxPayload)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return nil, d.errAt(d.off, "reading checksum: %w", noEOF(err))
		}
		d.off += 4
		want := binary.LittleEndian.Uint32(crcBuf[:])
		// Read the payload through a bounded copy: the declared length is
		// attacker-controlled, so the buffer grows only as bytes actually
		// arrive — a lying length field cannot demand a huge allocation.
		var pbuf bytes.Buffer
		if plen < maxPrealloc {
			pbuf.Grow(int(plen))
		}
		n, err := io.Copy(&pbuf, io.LimitReader(br, int64(plen)))
		if err != nil {
			return nil, d.errAt(d.off+n, "reading payload: %w", noEOF(err))
		}
		if uint64(n) != plen {
			return nil, d.errAt(d.off+n,
				"truncated payload: read %d of %d bytes: %w", n, plen, io.ErrUnexpectedEOF)
		}
		payload := pbuf.Bytes()
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, d.errAt(d.off,
				"payload checksum mismatch: computed %08x, stored %08x (%d payload bytes)",
				got, want, plen)
		}
		pd := &decoder{
			r:         bufio.NewReaderSize(bytes.NewReader(payload), 1<<16),
			off:       d.off,
			remaining: int64(plen),
		}
		t, err := pd.readBody()
		if err != nil {
			return nil, err
		}
		if pd.remaining != 0 {
			return nil, pd.errAt(pd.off, "%d trailing payload bytes after trace body", pd.remaining)
		}
		return t, nil
	case version3:
		// Columnar streaming format: materialise via the block reader
		// (colstore.go), which verifies every frame checksum and the
		// header totals.
		return readV3(d)
	default:
		return nil, fmt.Errorf("trace: byte offset %d: unsupported version %d", len(magic), v)
	}
}

// readBody decodes the version-1/2 trace body: metadata followed by
// the interleaved event stream.
func (d *decoder) readBody() (*Trace, error) {
	t := &Trace{Objects: objects.NewTable()}
	if err := d.readMeta(t); err != nil {
		return nil, err
	}

	nEvents, err := d.count("event count", minEventBytes)
	if err != nil {
		return nil, err
	}
	t.Events = make([]Event, 0, prealloc(nEvents))
	for i := uint64(0); i < nEvents; i++ {
		var e Event
		kindOff := d.off
		kb, err := d.readByte("event kind")
		if err != nil {
			return nil, err
		}
		e.Kind = EventKind(kb)
		if e.Kind > EvWrite {
			return nil, d.errAt(kindOff, "event %d: bad kind %d", i, kb)
		}
		if e.Kind != EvWrite {
			obj, err := d.uvarint("event object")
			if err != nil {
				return nil, err
			}
			e.Obj = objects.ID(obj)
		}
		ba, err := d.uvarint("event base address")
		if err != nil {
			return nil, err
		}
		length, err := d.uvarint("event length")
		if err != nil {
			return nil, err
		}
		e.BA = arch.Addr(ba)
		e.EA = e.BA + arch.Addr(length)
		if e.Kind == EvWrite {
			pc, err := d.uvarint("event pc")
			if err != nil {
				return nil, err
			}
			e.PC = arch.Addr(pc)
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// readMeta decodes the trace metadata (program, counters, object
// table) into t — the shared prefix of the v1/v2 body and the v3
// header frame.
func (d *decoder) readMeta(t *Trace) error {
	var err error
	if t.Program, err = d.str("program name"); err != nil {
		return err
	}
	if t.BaseCycles, err = d.uvarint("base cycles"); err != nil {
		return err
	}
	if t.Instret, err = d.uvarint("instret"); err != nil {
		return err
	}

	nObjs, err := d.count("object count", minObjectBytes)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nObjs; i++ {
		var o objects.Object
		kindOff := d.off
		kb, err := d.readByte("object kind")
		if err != nil {
			return err
		}
		if kb > uint8(objects.KindHeap) {
			return d.errAt(kindOff, "object %d: bad kind %d", i, kb)
		}
		o.Kind = objects.Kind(kb)
		if o.Func, err = d.str("object func"); err != nil {
			return err
		}
		if o.Name, err = d.str("object name"); err != nil {
			return err
		}
		szOff := d.off
		sz, err := d.uvarint("object size")
		if err != nil {
			return err
		}
		if sz > maxObjectSize {
			return d.errAt(szOff, "object %d: size %d exceeds cap %d", i, sz, uint64(maxObjectSize))
		}
		o.SizeBytes = int(sz)
		nCtx, err := d.count("alloc-context count", 1)
		if err != nil {
			return err
		}
		if nCtx > maxAllocCtx {
			return d.errAt(szOff, "object %d: %d alloc-context frames exceeds cap %d",
				i, nCtx, maxAllocCtx)
		}
		for j := uint64(0); j < nCtx; j++ {
			f, err := d.str("alloc-context frame")
			if err != nil {
				return err
			}
			o.AllocCtx = append(o.AllocCtx, f)
		}
		t.Objects.Add(o)
	}
	return nil
}

// WriteText renders the trace human-readably, one event per line.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace %s base_cycles=%d instret=%d objects=%d events=%d\n",
		t.Program, t.BaseCycles, t.Instret, t.Objects.Len(), len(t.Events))
	for _, o := range t.Objects.All() {
		fmt.Fprintf(bw, "obj %d %s func=%q name=%q size=%d ctx=%v\n",
			o.ID, o.Kind, o.Func, o.Name, o.SizeBytes, o.AllocCtx)
	}
	for _, e := range t.Events {
		switch e.Kind {
		case EvWrite:
			fmt.Fprintf(bw, "write %#x..%#x pc=%#x\n", uint32(e.BA), uint32(e.EA), uint32(e.PC))
		default:
			fmt.Fprintf(bw, "%s obj=%d %#x..%#x\n", e.Kind, e.Obj, uint32(e.BA), uint32(e.EA))
		}
	}
	return bw.Flush()
}

// wordOwners maps the words of one 4 KiB region to the object that owns
// each word, for ResolveWrites.
type wordOwners [1024]objects.ID

// ResolveWrites performs the session-independent half of a phase-2
// replay in one sequential pass: for every event it records which live
// object (if any) owns the written word at that instant. The result is
// parallel to Events — entry i is the object hit by Events[i] when it is
// a write, and 0 for installs, removes, and writes to unmonitored words.
// It also tallies the total number of write events.
//
// The resolution depends only on the trace (via the exclusivity
// invariant, ValidateExclusive), never on any monitor session, so it can
// be computed once and then broadcast to any number of per-session-shard
// replay workers (internal/sim.Sharded): the event stream is read once
// here, and shard workers consume the immutable (events, resolved) pair
// by index without re-deriving the word→object map.
func (t *Trace) ResolveWrites() (resolved []objects.ID, totalWrites uint64, err error) {
	resolved = make([]objects.ID, len(t.Events))
	words := make(map[uint32]*wordOwners)
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case EvInstall:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				pn := uint32(a) >> 12
				pg := words[pn]
				if pg == nil {
					pg = &wordOwners{}
					words[pn] = pg
				}
				pg[(a%4096)/4] = e.Obj
			}
		case EvRemove:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				pg := words[uint32(a)>>12]
				if pg == nil {
					continue
				}
				idx := (a % 4096) / 4
				if pg[idx] == e.Obj {
					pg[idx] = 0
				}
			}
		case EvWrite:
			totalWrites++
			if pg := words[uint32(e.BA)>>12]; pg != nil {
				resolved[i] = pg[(e.BA%4096)/4]
			}
		default:
			return nil, 0, fmt.Errorf("trace: unknown event kind %d", e.Kind)
		}
	}
	return resolved, totalWrites, nil
}

// Validate checks internal consistency: object references resolve,
// ranges are well-formed and word-aligned, and removes match installs.
func (t *Trace) Validate() error {
	active := make(map[objects.ID]int)
	for i, e := range t.Events {
		if e.EA <= e.BA {
			return fmt.Errorf("trace: event %d has empty range %v..%v", i, e.BA, e.EA)
		}
		if !arch.Aligned(e.BA) {
			return fmt.Errorf("trace: event %d range not word aligned", i)
		}
		switch e.Kind {
		case EvInstall, EvRemove:
			if _, ok := t.Objects.Get(e.Obj); !ok {
				return fmt.Errorf("trace: event %d references unknown object %d", i, e.Obj)
			}
			if e.Kind == EvInstall {
				active[e.Obj]++
			} else {
				active[e.Obj]--
				if active[e.Obj] < 0 {
					return fmt.Errorf("trace: event %d removes never-installed object %d", i, e.Obj)
				}
			}
		}
	}
	for id, n := range active {
		if n != 0 {
			return fmt.Errorf("trace: object %d left with %d active installs", id, n)
		}
	}
	return nil
}

// ValidateExclusive additionally checks the exclusivity invariant the
// phase-2 simulator relies on: at any instant, each word of memory is
// covered by at most one live object. Real traces satisfy this by
// construction (frames nest, heap blocks are disjoint, globals are laid
// out without overlap); this check exists for synthetic traces.
func (t *Trace) ValidateExclusive() error {
	owner := make(map[arch.Addr]objects.ID)
	for i, e := range t.Events {
		switch e.Kind {
		case EvInstall:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				if prev, taken := owner[a]; taken && prev != e.Obj {
					return fmt.Errorf("trace: event %d: word %#x owned by both object %d and %d",
						i, uint32(a), prev, e.Obj)
				}
				owner[a] = e.Obj
			}
		case EvRemove:
			for a := e.BA; a < e.EA; a += arch.WordBytes {
				delete(owner, a)
			}
		}
	}
	return nil
}
