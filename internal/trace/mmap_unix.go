//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps the file read-only and returns the mapping plus an
// unmap func. Empty files cannot be mapped; callers fall back to the
// plain read path on any error.
func mmapFile(path string) (data []byte, close func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, syscall.EINVAL
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
