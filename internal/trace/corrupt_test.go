package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"edb/internal/fault"
	"edb/internal/objects"
)

// writeV1 encodes a trace in the legacy version-1 format (no payload
// length, no checksum, body streamed directly after the version), as
// the pre-v2 Write did — the back-compat fixture generator.
func writeV1(t *Trace) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		buf.WriteString(s)
	}
	putUvarint(versionV1)
	putString(t.Program)
	putUvarint(t.BaseCycles)
	putUvarint(t.Instret)
	objs := t.Objects.All()
	putUvarint(uint64(len(objs)))
	for _, o := range objs {
		buf.WriteByte(byte(o.Kind))
		putString(o.Func)
		putString(o.Name)
		putUvarint(uint64(o.SizeBytes))
		putUvarint(uint64(len(o.AllocCtx)))
		for _, f := range o.AllocCtx {
			putString(f)
		}
	}
	putUvarint(uint64(len(t.Events)))
	for _, e := range t.Events {
		buf.WriteByte(byte(e.Kind))
		if e.Kind != EvWrite {
			putUvarint(uint64(e.Obj))
		}
		putUvarint(uint64(e.BA))
		putUvarint(uint64(e.EA - e.BA))
		if e.Kind == EvWrite {
			putUvarint(uint64(e.PC))
		}
	}
	return buf.Bytes()
}

// TestReadV1Legacy: version-1 files written by the previous format are
// still read, field for field.
func TestReadV1Legacy(t *testing.T) {
	tr := sampleTrace()
	got, err := Read(bytes.NewReader(writeV1(tr)))
	if err != nil {
		t.Fatalf("reading v1 file: %v", err)
	}
	if got.Program != tr.Program || got.BaseCycles != tr.BaseCycles || got.Instret != tr.Instret {
		t.Errorf("v1 header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Error("v1 events mismatch")
	}
	if got.Objects.Len() != tr.Objects.Len() {
		t.Error("v1 object count mismatch")
	}
}

// TestWriteEmitsV2: the writer emits the checksummed version-2 layout
// (magic, version, payload length, CRC32, payload).
func TestWriteEmitsV2(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if string(raw[:4]) != magic {
		t.Fatalf("bad magic %q", raw[:4])
	}
	br := bytes.NewReader(raw[4:])
	v, err := binary.ReadUvarint(br)
	if err != nil || v != version {
		t.Fatalf("version = %d (%v), want %d", v, err, version)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		t.Fatal(err)
	}
	var crcBuf [4]byte
	if _, err := br.Read(crcBuf[:]); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, plen)
	if _, err := br.Read(payload); err != nil {
		t.Fatal(err)
	}
	if br.Len() != 0 {
		t.Fatalf("%d trailing file bytes", br.Len())
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(crcBuf[:]) {
		t.Fatal("stored checksum does not cover payload")
	}
}

// TestReadRejectsEveryBitFlip: flipping any single bit of a version-2
// file must produce an error (never a crash), and flips inside the
// payload must be caught by the checksum.
func TestReadRejectsEveryBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Locate the payload start: magic + version uvarint + length uvarint
	// + 4-byte CRC.
	br := bytes.NewReader(full[4:])
	binary.ReadUvarint(br) // version
	binary.ReadUvarint(br) // payload length
	payloadStart := 4 + (int(br.Size()) - br.Len()) + 4

	flipped := 0
	for byteIdx := 0; byteIdx < len(full); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[byteIdx] ^= 1 << bit
			got, err := Read(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d decoded cleanly: %+v", byteIdx, bit, got)
			}
			if byteIdx >= payloadStart && !strings.Contains(err.Error(), "checksum mismatch") {
				t.Fatalf("payload flip at byte %d bit %d not caught by checksum: %v",
					byteIdx, bit, err)
			}
			flipped++
		}
	}
	if flipped != 8*len(full) {
		t.Fatalf("covered %d flips, want %d", flipped, 8*len(full))
	}
}

// v2File wraps a hand-built payload in a valid version-2 header with a
// correct checksum, so decode-level (post-checksum) defences are
// reachable.
func v2File(payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], version)
	buf.Write(scratch[:n])
	n = binary.PutUvarint(scratch[:], uint64(len(payload)))
	buf.Write(scratch[:n])
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	buf.Write(crcBuf[:])
	buf.Write(payload)
	return buf.Bytes()
}

// payloadWith builds a minimal trace body and lets the caller inflate
// one of the counts.
func payloadWith(nObjs, nEvents uint64) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUvarint(1)
	buf.WriteString("x") // program
	putUvarint(0)        // base cycles
	putUvarint(0)        // instret
	putUvarint(nObjs)
	putUvarint(nEvents)
	return buf.Bytes()
}

// TestReadRejectsInflatedCounts: counts the payload cannot possibly
// back are rejected before allocation, with byte-offset diagnostics.
func TestReadRejectsInflatedCounts(t *testing.T) {
	cases := []struct {
		name string
		file []byte
		want string
	}{
		{"events", v2File(payloadWith(0, 1<<40)), "event count"},
		{"objects", v2File(payloadWith(1<<40, 0)), "object count"},
	}
	for _, c := range cases {
		_, err := Read(bytes.NewReader(c.file))
		if err == nil {
			t.Fatalf("%s: inflated count decoded cleanly", c.name)
		}
		msg := err.Error()
		if !strings.Contains(msg, c.want) || !strings.Contains(msg, "byte offset") {
			t.Errorf("%s: diagnostic %q lacks count name or byte offset", c.name, msg)
		}
	}
}

// TestReadRejectsTruncatedV2: cutting a version-2 file anywhere yields
// a typed, offset-bearing error; cuts inside the payload name the
// shortfall.
func TestReadRejectsTruncatedV2(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
		if !strings.Contains(err.Error(), "byte offset") {
			t.Errorf("truncation at %d: diagnostic %q lacks byte offset", cut, err)
		}
	}
	// A payload cut specifically reports the shortfall.
	_, err := Read(bytes.NewReader(full[:len(full)-3]))
	if err == nil || !strings.Contains(err.Error(), "truncated payload") {
		t.Errorf("payload truncation diagnostic = %v", err)
	}
}

// TestReadRejectsTrailingPayloadBytes: payload bytes beyond the trace
// body are corruption, even when the checksum matches.
func TestReadRejectsTrailingPayloadBytes(t *testing.T) {
	payload := append(payloadWith(0, 0), 0xff)
	_, err := Read(bytes.NewReader(v2File(payload)))
	if err == nil || !strings.Contains(err.Error(), "trailing payload") {
		t.Errorf("trailing bytes diagnostic = %v", err)
	}
}

// TestReadRejectsFutureVersion: version 4 is an error naming the
// version, not a misparse.
func TestReadRejectsFutureVersion(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte(magic + "\x04")))
	if err == nil || !strings.Contains(err.Error(), "unsupported version 4") {
		t.Errorf("future version diagnostic = %v", err)
	}
}

// TestReadRejectsHugeObjectFields: per-object caps (size, context
// frames) hold even when the count fields themselves are plausible.
func TestReadRejectsHugeObjectFields(t *testing.T) {
	build := func(size, nCtx uint64) []byte {
		var buf bytes.Buffer
		var scratch [binary.MaxVarintLen64]byte
		putUvarint := func(v uint64) {
			n := binary.PutUvarint(scratch[:], v)
			buf.Write(scratch[:n])
		}
		putUvarint(1)
		buf.WriteString("x")
		putUvarint(0)
		putUvarint(0)
		putUvarint(1)    // one object
		buf.WriteByte(0) // kind
		putUvarint(0)    // func ""
		putUvarint(0)    // name ""
		putUvarint(size) // size
		putUvarint(nCtx) // alloc-context count
		// Pad so a large-but-capped nCtx passes the remaining-bytes
		// check and reaches the dedicated cap.
		buf.Write(make([]byte, 64*1024))
		return buf.Bytes()
	}
	if _, err := Read(bytes.NewReader(v2File(build(1<<40, 0)))); err == nil ||
		!strings.Contains(err.Error(), "size") {
		t.Errorf("huge object size diagnostic = %v", err)
	}
	if _, err := Read(bytes.NewReader(v2File(build(4, 1<<13)))); err == nil ||
		!strings.Contains(err.Error(), "alloc-context") {
		t.Errorf("huge alloc-context diagnostic = %v", err)
	}
}

// TestReadRejectsBadObjectKind: object kinds beyond KindHeap are
// rejected with the offending offset.
func TestReadRejectsBadObjectKind(t *testing.T) {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	putUvarint(1)
	buf.WriteString("x")
	putUvarint(0)
	putUvarint(0)
	putUvarint(1)                             // one object
	buf.WriteByte(byte(objects.KindHeap) + 1) // invalid kind
	buf.Write(make([]byte, 16))
	_, err := Read(bytes.NewReader(v2File(buf.Bytes())))
	if err == nil || !strings.Contains(err.Error(), "bad kind") {
		t.Errorf("bad kind diagnostic = %v", err)
	}
}

// TestWriteFaultInjection: the trace.Write error site returns a typed
// injected fault, and nothing is recorded as written cleanly.
func TestWriteFaultInjection(t *testing.T) {
	fault.Activate(fault.NewPlan(0, fault.Rule{
		Site: fault.SiteTraceWrite, Key: "demo", Kind: fault.Permanent, Times: 1}))
	defer fault.Deactivate()
	var buf bytes.Buffer
	err := sampleTrace().Write(&buf)
	if err == nil {
		t.Fatal("armed write site did not fault")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Site != fault.SiteTraceWrite {
		t.Fatalf("untyped write fault: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("faulted write still emitted %d bytes", buf.Len())
	}
	// The window has passed: the retry succeeds and round-trips.
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatalf("retry after transient window: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("retried write does not round-trip: %v", err)
	}
}

// TestCorruptionInjectionCaughtByChecksum: a seeded post-checksum bit
// flip at the corruption site must be detected by Read — the
// write-side half of the chaos contract for trace I/O.
func TestCorruptionInjectionCaughtByChecksum(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		fault.Activate(fault.NewPlan(seed, fault.Rule{
			Site: fault.SiteTraceCorrupt, Kind: fault.Corrupt, Times: 1}))
		var buf bytes.Buffer
		if err := sampleTrace().Write(&buf); err != nil {
			fault.Deactivate()
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		fault.Deactivate()
		_, err := Read(bytes.NewReader(buf.Bytes()))
		if err == nil {
			t.Fatalf("seed %d: corrupted trace decoded cleanly", seed)
		}
		if !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("seed %d: corruption not caught by checksum: %v", seed, err)
		}
	}
}

// TestReadFaultInjection: the trace.Read error site returns a typed
// injected fault before any bytes are consumed.
func TestReadFaultInjection(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	fault.Activate(fault.NewPlan(0, fault.Rule{
		Site: fault.SiteTraceRead, Kind: fault.Transient, Times: 1}))
	defer fault.Deactivate()
	_, err := Read(bytes.NewReader(buf.Bytes()))
	if !fault.IsTransient(err) {
		t.Fatalf("armed read site returned %v", err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("read after transient window: %v", err)
	}
}
