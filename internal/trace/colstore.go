// Columnar streaming trace store — binary format version 3.
//
// Version 2 frames the whole trace as one checksummed payload, which
// forces readers to materialise every event before replay can begin.
// Version 3 re-encodes the event stream as a sequence of columnar
// (structure-of-arrays) blocks so a reader can stream one block at a
// time into reusable buffers, verify each block independently, and —
// the point of the exercise — *skip decoding* the write columns of any
// block whose written-page summary cannot intersect the pages a replay
// engine is monitoring (internal/sim.RunStream).
//
// Layout ("frame" below = uvarint(len) + crc32-IEEE(4B LE) + payload;
// every frame is independently checksummed):
//
//	"EDBT"  uvarint(version=3)
//	header frame:
//	    program, base cycles, instret, object table   (v2 meta encoding)
//	    uvarint(nBlocks) uvarint(nEvents) uvarint(nWrites)
//	then per block, two frames:
//	  summary frame:
//	    uvarint(nEvents) uvarint(nWrites)
//	    uvarint(minWritePage) uvarint(maxWritePage-minWritePage)
//	    bloom[32]          256-bit filter over written 4 KiB pages
//	  column frame: 8 sub-columns, each uvarint(len)-prefixed:
//	    0 interleave bitmap   bit i set = event i is a write
//	    1 kind bitmap         bit j set = j-th install/remove is a remove
//	    2 obj                 uvarint per install/remove
//	    3 irBA                zigzag varint delta per install/remove
//	    4 irLen               uvarint (EA−BA) per install/remove
//	    5 wrBA                zigzag varint delta per write
//	    6 wrLen               uvarint (EA−BA) per write
//	    7 wrPC                zigzag varint delta per write
//
// Delta chains restart at 0 in every block, so blocks decode
// independently. The summary frame is tiny and carries its own CRC, so
// a reader can make the skip decision before parsing any column; the
// column frame is still read and CRC-verified even when its write
// columns are skipped — the fast path never trades integrity for
// speed, it only elides decode and replay work.
//
// Skip soundness: the summary is conservative by construction (it
// covers exactly the 4 KiB pages written by the block's write events,
// and the bloom only ever over-approximates), so "summary cannot
// intersect the monitored pages" proves the block's writes can neither
// hit a monitor nor change any monitored page's write counter — see
// DESIGN.md §12 for the full argument.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"

	"edb/internal/arch"
	"edb/internal/fault"
	"edb/internal/objects"
)

const (
	version3 = 3

	// DefaultBlockEvents is the events-per-block the v3 writer uses
	// unless told otherwise. Measured on the bps workload, smaller
	// blocks skip a markedly larger fraction of write columns under
	// sparse monitor sets (a heap page is hot for a few thousand
	// events, not for 64Ki) while per-block framing overhead stays
	// under 0.1%; 8Ki is the knee of that curve. See EXPERIMENTS.md.
	DefaultBlockEvents = 8192

	// maxBlockEvents caps a block's declared event count before any
	// allocation happens.
	maxBlockEvents = 1 << 24
	// maxSummaryFrame caps the summary-frame length (its payload is a
	// handful of varints plus the bloom).
	maxSummaryFrame = 1 << 10
	// bloomBytes is the page-bloom size: 256 bits.
	bloomBytes = 32
	// maxPageNumber bounds 4 KiB page numbers on the 32-bit simulated
	// machine.
	maxPageNumber = 1 << 20
)

// BlockSummary is the per-block metadata a streaming reader sees
// before deciding whether to decode the block's write columns: event
// counts plus a conservative summary of the 4 KiB pages the block's
// write events touch (min/max page and a 256-bit bloom filter).
type BlockSummary struct {
	NEvents int
	NWrites int
	// MinPage, MaxPage bound the written 4 KiB page numbers
	// (meaningful only when NWrites > 0).
	MinPage, MaxPage uint32
	// Bloom is a 256-bit filter over written 4 KiB page numbers.
	Bloom [bloomBytes]byte
}

// pageBloomBit maps a page number to its bloom bit. The multiplicative
// (Knuth) hash matters: page numbers from different segments are
// congruent mod small powers of two (globals at 0x400000, heap at
// 0x1000000), so taking low bits directly would alias whole segments.
func pageBloomBit(pn uint32) uint32 { return (pn * 2654435761) >> 24 }

func (s *BlockSummary) addPage(pn uint32) {
	b := pageBloomBit(pn)
	s.Bloom[b>>3] |= 1 << (b & 7)
}

// MayContainWritePage reports whether the block may contain a write
// event whose base address falls on 4 KiB page pn. False negatives are
// impossible (the writer summarises the actual write pages); false
// positives only cost a decode.
func (s *BlockSummary) MayContainWritePage(pn uint32) bool {
	if s.NWrites == 0 || pn < s.MinPage || pn > s.MaxPage {
		return false
	}
	b := pageBloomBit(pn)
	return s.Bloom[b>>3]&(1<<(b&7)) != 0
}

// summarize computes the canonical block summary of an event slice —
// the single source of truth shared by the writer and BuildBlockIndex.
func summarize(events []Event) BlockSummary {
	var s BlockSummary
	s.NEvents = len(events)
	for i := range events {
		e := &events[i]
		if e.Kind != EvWrite {
			continue
		}
		pn := uint32(e.BA) >> 12
		if s.NWrites == 0 {
			s.MinPage, s.MaxPage = pn, pn
		} else {
			if pn < s.MinPage {
				s.MinPage = pn
			}
			if pn > s.MaxPage {
				s.MaxPage = pn
			}
		}
		s.NWrites++
		s.addPage(pn)
	}
	return s
}

// BlockIndex is the in-memory block map of a trace under a given
// blocking: the summaries WriteV3Blocks would emit, computable without
// serialising. internal/exp caches one per (benchmark, scale) artifact
// so repeated streaming analyses share the skip metadata.
type BlockIndex struct {
	BlockEvents int
	Blocks      []BlockSummary
}

// NumBlocks returns the number of blocks in the index.
func (x *BlockIndex) NumBlocks() int { return len(x.Blocks) }

// BuildBlockIndex computes the trace's block index for the given
// events-per-block (DefaultBlockEvents when <= 0). The summaries are
// byte-for-byte the ones WriteV3Blocks emits for the same blocking.
func (t *Trace) BuildBlockIndex(blockEvents int) *BlockIndex {
	if blockEvents <= 0 {
		blockEvents = DefaultBlockEvents
	}
	x := &BlockIndex{BlockEvents: blockEvents}
	for off := 0; off < len(t.Events); off += blockEvents {
		end := off + blockEvents
		if end > len(t.Events) {
			end = len(t.Events)
		}
		x.Blocks = append(x.Blocks, summarize(t.Events[off:end]))
	}
	return x
}

// zigzag / unzigzag are the standard signed-varint mappings used by the
// per-column delta encodings.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteV3 serialises the trace in the columnar streaming format with
// the default block size. v1/v2 readers do not read it; OpenStream and
// Read do.
//
// Deprecated: use WriteTo(w, t, WriteOptions{Version: 3}).
func (t *Trace) WriteV3(w io.Writer) error { return WriteTo(w, t, WriteOptions{Version: version3}) }

// WriteV3Blocks is WriteV3 with an explicit events-per-block
// (<= 0 selects DefaultBlockEvents). The choice is a pure layout
// parameter: any blocking decodes to the same trace and replays to the
// same counters (the metamorphic suite pins this down to 1-event
// blocks).
//
// Deprecated: use WriteTo(w, t, WriteOptions{Version: 3, BlockEvents: n}).
func (t *Trace) WriteV3Blocks(w io.Writer, blockEvents int) error {
	return WriteTo(w, t, WriteOptions{Version: version3, BlockEvents: blockEvents})
}

// Block is one decoded v3 block in columnar form, reused across
// iterations of one Stream. IR* slices hold the install/remove events
// in stream order; Wr* the writes (empty until DecodeWrites); IsWrite
// is the interleave bitmap as booleans, reconstructing full event
// order.
type Block struct {
	NEvents int
	NWrites int
	IsWrite []bool
	IRKind  []EventKind
	IRObj   []objects.ID
	IRBA    []arch.Addr
	IREA    []arch.Addr
	WrBA    []arch.Addr
	WrEA    []arch.Addr
	WrPC    []arch.Addr
	// WritesDecoded reports whether the write columns were decoded
	// (false on the skip path: Wr* are empty and only the summary's
	// NWrites is known about them).
	WritesDecoded bool
}

// AppendEvents materialises the block's events in stream order onto
// dst. The write columns must have been decoded.
func (b *Block) AppendEvents(dst []Event) []Event {
	ir, wr := 0, 0
	for i := 0; i < b.NEvents; i++ {
		if b.IsWrite[i] {
			dst = append(dst, Event{Kind: EvWrite, BA: b.WrBA[wr], EA: b.WrEA[wr], PC: b.WrPC[wr]})
			wr++
		} else {
			dst = append(dst, Event{Kind: b.IRKind[ir], Obj: b.IRObj[ir], BA: b.IRBA[ir], EA: b.IREA[ir]})
			ir++
		}
	}
	return dst
}

// StreamSource hands out independent Streams over the same v3 file, so
// sharded replay workers can each run their own single pass.
type StreamSource interface {
	Open() (*Stream, error)
}

// FileSource returns a StreamSource that opens the v3 trace file at
// path with default windowed readahead; each Open is an independent
// handle owned (and closed) by the returned Stream. Use FileSourceWith
// to tune the window or map the file instead (readahead.go).
func FileSource(path string) StreamSource { return fileSourceOpt{path: path} }

type bytesSource []byte

// BytesSource returns a StreamSource over an in-memory v3 file.
func BytesSource(data []byte) StreamSource { return bytesSource(data) }

func (b bytesSource) Open() (*Stream, error) { return OpenStream(bytes.NewReader(b)) }

func (b bytesSource) openRaw() (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(b)), nil
}

func (b bytesSource) openRawAt(off int64) (io.ReadCloser, error) {
	if off < 0 || off > int64(len(b)) {
		return nil, fmt.Errorf("trace: byte offset %d outside %d-byte source", off, len(b))
	}
	return io.NopCloser(bytes.NewReader(b[off:])), nil
}

// Stream is a streaming reader over a v3 trace file: the header is
// decoded eagerly; blocks are visited one at a time with Next and
// decoded on demand into one reusable Block — a full pass never
// materialises []Event. The iteration protocol:
//
//	s, err := trace.OpenStream(r)
//	for s.Next() {
//	    sum := s.Summary()            // skip decision inputs
//	    blk, err := s.DecodeIR()      // install/remove columns
//	    if !skippable {
//	        err = s.DecodeWrites()    // write columns, same blk
//	    }
//	}
//	err = s.Err()                     // totals + trailing-data checks
//
// Next always reads and CRC-verifies both of the block's frames, so
// corruption is detected even on blocks whose write columns are never
// decoded.
type Stream struct {
	Program    string
	BaseCycles uint64
	Instret    uint64
	Objects    *objects.Table
	// NumBlocks/NumEvents/NumWrites are the header-declared totals;
	// the per-block counts are checked against them as iteration ends.
	NumBlocks int
	NumEvents uint64
	NumWrites uint64

	d      *decoder
	closer io.Closer
	err    error
	done   bool

	blockIdx             int
	sumEvents, sumWrites uint64
	sum                  BlockSummary

	sumBuf     []byte // summary-frame payload scratch
	payload    []byte // column-frame payload of the current block
	payloadOff int64  // file offset of payload[0]
	wrStart    int    // payload offset of the write columns (after DecodeIR)
	blk        Block
	irDone     bool
}

// OpenStream opens a version-3 trace file for block-at-a-time
// streaming, decoding the file header (program, object table, totals).
// v1/v2 files are rejected — materialise those with Read. Close the
// stream when done (a no-op unless the Stream owns the underlying
// file, as with FileSource).
func OpenStream(r io.Reader) (*Stream, error) {
	if err := fault.Inject(fault.SiteTraceRead, ""); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: byte offset 0: reading magic: %w", noEOF(err))
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: byte offset 0: bad magic %q", head)
	}
	d := &decoder{r: br, off: int64(len(magic)), remaining: -1}
	v, err := d.uvarint("version")
	if err != nil {
		return nil, err
	}
	if v != version3 {
		return nil, fmt.Errorf("trace: byte offset %d: cannot stream version %d (only version 3 is columnar; use Read)",
			len(magic), v)
	}
	return newStream(d)
}

// readFrame reads one length-prefixed, CRC32-checked frame into buf
// (grown as needed and returned), verifying the checksum. The declared
// length is attacker-controlled, so the buffer grows chunk-by-chunk as
// bytes actually arrive rather than trusting the length up front.
func (d *decoder) readFrame(what string, buf []byte, maxLen uint64) ([]byte, error) {
	lenOff := d.off
	plen, err := d.uvarint(what + " length")
	if err != nil {
		return nil, err
	}
	if plen > maxLen {
		return nil, d.errAt(lenOff, "%s length %d exceeds cap %d", what, plen, maxLen)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(d.r, crcBuf[:]); err != nil {
		return nil, d.errAt(d.off, "reading %s checksum: %w", what, noEOF(err))
	}
	d.off += 4
	want := binary.LittleEndian.Uint32(crcBuf[:])
	buf = buf[:0]
	for read := uint64(0); read < plen; {
		chunk := plen - read
		if chunk > 1<<16 {
			chunk = 1 << 16
		}
		off := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(d.r, buf[off:]); err != nil {
			return nil, d.errAt(d.off, "reading %s: %w", what, noEOF(err))
		}
		d.off += int64(chunk)
		read += chunk
	}
	if got := crc32.ChecksumIEEE(buf); got != want {
		return nil, d.errAt(lenOff,
			"%s checksum mismatch: computed %08x, stored %08x (%d payload bytes)",
			what, got, want, plen)
	}
	return buf, nil
}

// newStream decodes the header frame; d is positioned just after the
// version field.
func newStream(d *decoder) (*Stream, error) {
	s := &Stream{d: d}
	payload, err := d.readFrame("header frame", nil, maxPayload)
	if err != nil {
		return nil, err
	}
	hd := &decoder{
		r:         bufio.NewReader(bytes.NewReader(payload)),
		off:       d.off - int64(len(payload)),
		remaining: int64(len(payload)),
	}
	t := &Trace{Objects: objects.NewTable()}
	if err := hd.readMeta(t); err != nil {
		return nil, err
	}
	s.Program, s.BaseCycles, s.Instret, s.Objects = t.Program, t.BaseCycles, t.Instret, t.Objects
	cntOff := hd.off
	nBlocks, err := hd.uvarint("block count")
	if err != nil {
		return nil, err
	}
	if s.NumEvents, err = hd.uvarint("event count"); err != nil {
		return nil, err
	}
	if s.NumWrites, err = hd.uvarint("write count"); err != nil {
		return nil, err
	}
	if hd.remaining != 0 {
		return nil, hd.errAt(hd.off, "%d trailing bytes in header frame", hd.remaining)
	}
	// Every block holds >= 1 event, so the block count is bounded by
	// the event count; the totals must be mutually consistent.
	if nBlocks > s.NumEvents || (nBlocks == 0) != (s.NumEvents == 0) {
		return nil, hd.errAt(cntOff, "block count %d inconsistent with event count %d", nBlocks, s.NumEvents)
	}
	if s.NumWrites > s.NumEvents {
		return nil, hd.errAt(cntOff, "write count %d exceeds event count %d", s.NumWrites, s.NumEvents)
	}
	s.NumBlocks = int(nBlocks)
	return s, nil
}

// Close releases the underlying file when the Stream owns one
// (FileSource); otherwise it is a no-op.
func (s *Stream) Close() error {
	if s.closer != nil {
		c := s.closer
		s.closer = nil
		return c.Close()
	}
	return nil
}

// Err returns the first error the iteration hit, if any. Valid after
// Next returns false.
func (s *Stream) Err() error { return s.err }

// Summary returns the current block's summary frame. Valid after a
// true Next, until the next call to Next.
func (s *Stream) Summary() *BlockSummary { return &s.sum }

// fail records the iteration error.
func (s *Stream) fail(err error) bool {
	s.err = err
	s.done = true
	return false
}

// Next advances to the next block, reading and CRC-verifying its
// summary and column frames. It returns false when the file is
// exhausted (then Err reports nil and the header totals have been
// verified against the per-block counts) or on error (Err non-nil).
func (s *Stream) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	if s.blockIdx == s.NumBlocks {
		s.done = true
		if s.sumEvents != s.NumEvents || s.sumWrites != s.NumWrites {
			return s.fail(s.d.errAt(s.d.off,
				"blocks hold %d events / %d writes, header declared %d / %d",
				s.sumEvents, s.sumWrites, s.NumEvents, s.NumWrites))
		}
		if _, err := s.d.r.ReadByte(); err != io.EOF {
			if err != nil {
				return s.fail(s.d.errAt(s.d.off, "after last block: %w", err))
			}
			return s.fail(s.d.errAt(s.d.off, "trailing data after last block"))
		}
		return false
	}

	sumOff := s.d.off
	buf, err := s.d.readFrame("block summary frame", s.sumBuf, maxSummaryFrame)
	if err != nil {
		return s.fail(err)
	}
	s.sumBuf = buf
	if ok := s.parseSummary(buf, sumOff); !ok {
		return false
	}

	colOff := s.d.off
	payload, err := s.d.readFrame("block column frame", s.payload, maxPayload)
	if err != nil {
		return s.fail(err)
	}
	s.payload = payload
	s.payloadOff = colOff
	// The interleave bitmap alone needs ceil(nEvents/8) bytes, so a
	// declared count the frame cannot back is rejected before the
	// decode buffers are sized from it.
	if s.sum.NEvents > 8*len(payload) {
		return s.fail(s.d.errAt(sumOff, "block %d: %d events cannot fit %d column bytes",
			s.blockIdx, s.sum.NEvents, len(payload)))
	}

	s.sumEvents += uint64(s.sum.NEvents)
	s.sumWrites += uint64(s.sum.NWrites)
	if s.sumEvents > s.NumEvents || s.sumWrites > s.NumWrites {
		return s.fail(s.d.errAt(sumOff, "block %d overruns header totals (%d/%d events, %d/%d writes)",
			s.blockIdx, s.sumEvents, s.NumEvents, s.sumWrites, s.NumWrites))
	}
	s.blockIdx++
	s.irDone = false
	s.blk.WritesDecoded = false
	return true
}

// parseSummary decodes and validates one summary-frame payload.
func (s *Stream) parseSummary(buf []byte, frameOff int64) bool {
	c := colCursor{b: buf, base: frameOff}
	nEvents, err := c.uvarint("block event count")
	if err != nil {
		return s.fail(err)
	}
	nWrites, err := c.uvarint("block write count")
	if err != nil {
		return s.fail(err)
	}
	minPage, err := c.uvarint("block min page")
	if err != nil {
		return s.fail(err)
	}
	span, err := c.uvarint("block page span")
	if err != nil {
		return s.fail(err)
	}
	if nEvents == 0 || nEvents > maxBlockEvents {
		return s.fail(c.errAt(0, "block %d: bad event count %d", s.blockIdx, nEvents))
	}
	if nWrites > nEvents {
		return s.fail(c.errAt(0, "block %d: write count %d exceeds event count %d",
			s.blockIdx, nWrites, nEvents))
	}
	if minPage+span >= maxPageNumber {
		return s.fail(c.errAt(0, "block %d: page summary %d+%d beyond the 32-bit address space",
			s.blockIdx, minPage, span))
	}
	if len(buf)-c.pos != bloomBytes {
		return s.fail(c.errAt(c.pos, "block %d: summary holds %d bloom bytes, want %d",
			s.blockIdx, len(buf)-c.pos, bloomBytes))
	}
	s.sum = BlockSummary{
		NEvents: int(nEvents),
		NWrites: int(nWrites),
		MinPage: uint32(minPage),
		MaxPage: uint32(minPage + span),
	}
	copy(s.sum.Bloom[:], buf[c.pos:])
	if nWrites == 0 {
		// Writeless blocks must carry the canonical empty summary — a
		// CRC-valid frame claiming pages it has no writes for is
		// corruption, not conservatism.
		if minPage != 0 || span != 0 {
			return s.fail(c.errAt(0, "block %d: page summary on a writeless block", s.blockIdx))
		}
		for _, b := range s.sum.Bloom {
			if b != 0 {
				return s.fail(c.errAt(c.pos, "block %d: bloom bits on a writeless block", s.blockIdx))
			}
		}
	}
	return true
}

// colCursor decodes one in-memory payload while reporting errors at
// absolute file offsets (base + position).
type colCursor struct {
	b    []byte
	pos  int
	base int64
}

func (c *colCursor) errAt(pos int, format string, args ...any) error {
	return fmt.Errorf("trace: byte offset "+fmt.Sprint(c.base+int64(pos))+": "+format, args...)
}

func (c *colCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		if n == 0 {
			return 0, c.errAt(c.pos, "reading %s: %w", what, io.ErrUnexpectedEOF)
		}
		return 0, c.errAt(c.pos, "%s: uvarint overflows 64 bits", what)
	}
	c.pos += n
	return v, nil
}

// sub reads a sub-column length prefix and returns a cursor over
// exactly those bytes, advancing past them.
func (c *colCursor) sub(what string) (colCursor, error) {
	start := c.pos
	n, err := c.uvarint(what + " length")
	if err != nil {
		return colCursor{}, err
	}
	if n > uint64(len(c.b)-c.pos) {
		return colCursor{}, c.errAt(start, "%s length %d exceeds %d remaining frame bytes",
			what, n, len(c.b)-c.pos)
	}
	sc := colCursor{b: c.b[c.pos : c.pos+int(n)], base: c.base + int64(c.pos)}
	c.pos += int(n)
	return sc, nil
}

func (c *colCursor) remaining() int { return len(c.b) - c.pos }

// growBool / growAddr / growKind / growID resize reusable column
// buffers without reallocating when capacity suffices.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growAddr(s []arch.Addr, n int) []arch.Addr {
	if cap(s) < n {
		return make([]arch.Addr, n)
	}
	return s[:n]
}

func growKind(s []EventKind, n int) []EventKind {
	if cap(s) < n {
		return make([]EventKind, n)
	}
	return s[:n]
}

func growID(s []objects.ID, n int) []objects.ID {
	if cap(s) < n {
		return make([]objects.ID, n)
	}
	return s[:n]
}

// readBitmap decodes one length-prefixed bitmap sub-column of nBits
// bits, checking the byte length and that padding bits are zero, and
// returns the raw bytes.
func (c *colCursor) readBitmap(what string, nBits int) ([]byte, error) {
	sc, err := c.sub(what)
	if err != nil {
		return nil, err
	}
	want := (nBits + 7) / 8
	if len(sc.b) != want {
		return nil, sc.errAt(0, "%s holds %d bytes for %d bits, want %d", what, len(sc.b), nBits, want)
	}
	if pad := 8*want - nBits; pad > 0 && want > 0 {
		if sc.b[want-1]>>(8-pad) != 0 {
			return nil, sc.errAt(want-1, "%s has non-zero padding bits", what)
		}
	}
	return sc.b, nil
}

// DecodeIR decodes the current block's interleave bitmap and
// install/remove columns into the stream's reusable Block, leaving the
// write columns undecoded (DecodeWrites adds them). Valid after a true
// Next; the returned Block is invalidated by the next Next.
func (s *Stream) DecodeIR() (*Block, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.irDone {
		return &s.blk, nil
	}
	b := &s.blk
	n, nWr := s.sum.NEvents, s.sum.NWrites
	nIR := n - nWr
	b.NEvents, b.NWrites = n, nWr
	b.WrBA, b.WrEA, b.WrPC = b.WrBA[:0], b.WrEA[:0], b.WrPC[:0]
	b.WritesDecoded = false

	c := colCursor{b: s.payload, base: s.payloadOff}
	inter, err := c.readBitmap("interleave bitmap", n)
	if err != nil {
		return nil, s.failDecode(err)
	}
	wr := 0
	for _, by := range inter {
		wr += bits.OnesCount8(by)
	}
	if wr != nWr {
		return nil, s.failDecode(c.errAt(0, "interleave bitmap marks %d writes, summary says %d", wr, nWr))
	}
	b.IsWrite = growBool(b.IsWrite, n)
	for i := 0; i < n; i++ {
		b.IsWrite[i] = inter[i>>3]&(1<<(i&7)) != 0
	}

	kinds, err := c.readBitmap("kind bitmap", nIR)
	if err != nil {
		return nil, s.failDecode(err)
	}
	b.IRKind = growKind(b.IRKind, nIR)
	for j := 0; j < nIR; j++ {
		if kinds[j>>3]&(1<<(j&7)) != 0 {
			b.IRKind[j] = EvRemove
		} else {
			b.IRKind[j] = EvInstall
		}
	}

	obj, err := c.sub("obj column")
	if err != nil {
		return nil, s.failDecode(err)
	}
	b.IRObj = growID(b.IRObj, nIR)
	ob, opos := obj.b, 0
	for j := 0; j < nIR; j++ {
		var v uint64
		if opos < len(ob) && ob[opos] < 0x80 {
			v = uint64(ob[opos])
			opos++
		} else if opos+1 < len(ob) && ob[opos+1] < 0x80 {
			v = uint64(ob[opos]&0x7f) | uint64(ob[opos+1])<<7
			opos += 2
		} else {
			var n int
			v, n = binary.Uvarint(ob[opos:])
			if n <= 0 {
				if n == 0 {
					return nil, s.failDecode(obj.errAt(opos, "reading event object: %w", io.ErrUnexpectedEOF))
				}
				return nil, s.failDecode(obj.errAt(opos, "event object: uvarint overflows 64 bits"))
			}
			opos += n
		}
		b.IRObj[j] = objects.ID(v)
	}
	if opos != len(ob) {
		return nil, s.failDecode(obj.errAt(opos, "%d trailing bytes in obj column", len(ob)-opos))
	}

	b.IRBA = growAddr(b.IRBA, nIR)
	if err := c.deltaColumn("irBA column", b.IRBA); err != nil {
		return nil, s.failDecode(err)
	}
	b.IREA = growAddr(b.IREA, nIR)
	if err := c.lenColumn("irLen column", b.IRBA, b.IREA); err != nil {
		return nil, s.failDecode(err)
	}

	s.wrStart = c.pos
	s.irDone = true
	return b, nil
}

// failDecode records a decode error so later iteration stops too.
func (s *Stream) failDecode(err error) error {
	s.err = err
	s.done = true
	return err
}

// deltaColumn decodes one zigzag-delta sub-column into dst (the chain
// starts at 0 for every block). The loop runs once per event, so the
// 1- and 2-byte varint cases are inlined over the raw payload; only
// longer (or truncated/overflowing) encodings fall back to
// binary.Uvarint and its error reporting.
func (c *colCursor) deltaColumn(what string, dst []arch.Addr) error {
	sc, err := c.sub(what)
	if err != nil {
		return err
	}
	b := sc.b
	pos := 0
	var prev uint64
	for i := range dst {
		var v uint64
		if pos < len(b) && b[pos] < 0x80 {
			v = uint64(b[pos])
			pos++
		} else if pos+1 < len(b) && b[pos+1] < 0x80 {
			v = uint64(b[pos]&0x7f) | uint64(b[pos+1])<<7
			pos += 2
		} else {
			var n int
			v, n = binary.Uvarint(b[pos:])
			if n <= 0 {
				if n == 0 {
					return sc.errAt(pos, "reading %s delta: %w", what, io.ErrUnexpectedEOF)
				}
				return sc.errAt(pos, "%s delta: uvarint overflows 64 bits", what)
			}
			pos += n
		}
		prev += uint64(unzigzag(v))
		dst[i] = arch.Addr(prev)
	}
	if pos != len(b) {
		return sc.errAt(pos, "%d trailing bytes in %s", len(b)-pos, what)
	}
	return nil
}

// lenColumn decodes one uvarint length sub-column as EA = BA + len,
// with the same inlined varint fast paths as deltaColumn.
func (c *colCursor) lenColumn(what string, ba, ea []arch.Addr) error {
	sc, err := c.sub(what)
	if err != nil {
		return err
	}
	b := sc.b
	pos := 0
	for i := range ea {
		var v uint64
		if pos < len(b) && b[pos] < 0x80 {
			v = uint64(b[pos])
			pos++
		} else if pos+1 < len(b) && b[pos+1] < 0x80 {
			v = uint64(b[pos]&0x7f) | uint64(b[pos+1])<<7
			pos += 2
		} else {
			var n int
			v, n = binary.Uvarint(b[pos:])
			if n <= 0 {
				if n == 0 {
					return sc.errAt(pos, "reading %s value: %w", what, io.ErrUnexpectedEOF)
				}
				return sc.errAt(pos, "%s value: uvarint overflows 64 bits", what)
			}
			pos += n
		}
		ea[i] = ba[i] + arch.Addr(v)
	}
	if pos != len(b) {
		return sc.errAt(pos, "%d trailing bytes in %s", len(b)-pos, what)
	}
	return nil
}

// DecodeWrites decodes the current block's write columns into the same
// Block DecodeIR returned, and validates every write against the
// summary frame: a CRC-valid summary that excludes one of its own
// write pages would make block skipping unsound, so it is rejected as
// corruption here.
func (s *Stream) DecodeWrites() error {
	if _, err := s.DecodeIR(); err != nil {
		return err
	}
	b := &s.blk
	if b.WritesDecoded {
		return nil
	}
	c := colCursor{b: s.payload, pos: s.wrStart, base: s.payloadOff}
	b.WrBA = growAddr(b.WrBA[:0], b.NWrites)
	if err := c.deltaColumn("wrBA column", b.WrBA); err != nil {
		return s.failDecode(err)
	}
	b.WrEA = growAddr(b.WrEA, b.NWrites)
	if err := c.lenColumn("wrLen column", b.WrBA, b.WrEA); err != nil {
		return s.failDecode(err)
	}
	b.WrPC = growAddr(b.WrPC, b.NWrites)
	if err := c.deltaColumn("wrPC column", b.WrPC); err != nil {
		return s.failDecode(err)
	}
	if c.remaining() != 0 {
		return s.failDecode(c.errAt(c.pos, "%d trailing bytes in column frame", c.remaining()))
	}
	for i, ba := range b.WrBA {
		if pn := uint32(ba) >> 12; !s.sum.MayContainWritePage(pn) {
			return s.failDecode(c.errAt(0, "write %d on page %d escapes the block page summary", i, pn))
		}
	}
	b.WritesDecoded = true
	return nil
}

// readV3 materialises a version-3 file into a Trace — the Read path
// for v3, built on the streaming reader so there is exactly one
// decoder. d is positioned just after the version field.
func readV3(d *decoder) (*Trace, error) {
	s, err := newStream(d)
	if err != nil {
		return nil, err
	}
	return materializeStream(s)
}
