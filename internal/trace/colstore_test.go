package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"edb/internal/arch"
	"edb/internal/objects"
)

// bigTrace builds a multi-block-worthy trace with interleaved installs,
// removes, and writes across several pages and both address segments.
func bigTrace(events int) *Trace {
	rng := rand.New(rand.NewSource(7))
	tab := objects.NewTable()
	tr := &Trace{Program: "big", BaseCycles: 123, Instret: 456, Objects: tab}
	var live []struct {
		id     objects.ID
		ba, ea arch.Addr
	}
	heap := arch.Addr(0x1000000)
	for len(tr.Events) < events {
		switch rng.Intn(6) {
		case 0:
			size := arch.Addr(4 * (1 + rng.Intn(8)))
			id := tab.Add(objects.Object{Kind: objects.KindHeap, Name: "h", SizeBytes: int(size)})
			tr.Events = append(tr.Events, Event{Kind: EvInstall, Obj: id, BA: heap, EA: heap + size})
			live = append(live, struct {
				id     objects.ID
				ba, ea arch.Addr
			}{id, heap, heap + size})
			heap += size + arch.Addr(rng.Intn(3)*4096)
		case 1:
			if len(live) > 0 {
				i := rng.Intn(len(live))
				o := live[i]
				live = append(live[:i], live[i+1:]...)
				tr.Events = append(tr.Events, Event{Kind: EvRemove, Obj: o.id, BA: o.ba, EA: o.ea})
			}
		default:
			var ba arch.Addr
			if len(live) > 0 && rng.Intn(2) == 0 {
				o := live[rng.Intn(len(live))]
				ba = o.ba
			} else {
				ba = arch.Addr(0x400000 + rng.Intn(5000)*4)
			}
			tr.Events = append(tr.Events, Event{Kind: EvWrite, BA: ba, EA: ba + 4,
				PC: arch.Addr(0x10000 + rng.Intn(200)*4)})
		}
	}
	return tr
}

// TestV3RoundTrip pins Write(v3) ∘ Read ≡ id across block sizes,
// including degenerate 1-event blocks and blocks larger than the trace.
func TestV3RoundTrip(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), bigTrace(1000)} {
		for _, be := range []int{1, 2, 3, 7, 64, DefaultBlockEvents} {
			var buf bytes.Buffer
			if err := tr.WriteV3Blocks(&buf, be); err != nil {
				t.Fatalf("%s/be=%d: WriteV3Blocks: %v", tr.Program, be, err)
			}
			got, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/be=%d: Read: %v", tr.Program, be, err)
			}
			if got.Program != tr.Program || got.BaseCycles != tr.BaseCycles || got.Instret != tr.Instret {
				t.Fatalf("%s/be=%d: header mismatch: %+v", tr.Program, be, got)
			}
			if !reflect.DeepEqual(got.Events, tr.Events) {
				t.Fatalf("%s/be=%d: events differ after v3 round trip", tr.Program, be)
			}
			if !reflect.DeepEqual(got.Objects.All(), tr.Objects.All()) {
				t.Fatalf("%s/be=%d: object tables differ", tr.Program, be)
			}
		}
	}
}

// TestV3RoundTripEmpty covers the zero-event trace: no blocks, and the
// materialised Events slice stays non-nil (matching the v2 reader).
func TestV3RoundTripEmpty(t *testing.T) {
	tr := &Trace{Program: "empty", Objects: objects.NewTable()}
	var buf bytes.Buffer
	if err := tr.WriteV3(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Events == nil || len(got.Events) != 0 {
		t.Fatalf("empty trace decoded to Events=%v, want non-nil empty", got.Events)
	}
	s, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks != 0 || s.Next() {
		t.Fatalf("empty trace stream: NumBlocks=%d Next=%v", s.NumBlocks, s.Next())
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamIteration walks sampleTrace at 2 events/block and checks
// the whole streaming protocol: header totals, per-block summaries
// matching BuildBlockIndex, idempotent DecodeIR, DecodeWrites without a
// prior DecodeIR call, and AppendEvents materialisation.
func TestStreamIteration(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, 2); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Program != tr.Program || s.NumBlocks != 3 || s.NumEvents != 6 || s.NumWrites != 2 {
		t.Fatalf("stream header: %q blocks=%d events=%d writes=%d",
			s.Program, s.NumBlocks, s.NumEvents, s.NumWrites)
	}
	idx := tr.BuildBlockIndex(2)
	if idx.NumBlocks() != 3 || idx.BlockEvents != 2 {
		t.Fatalf("BuildBlockIndex: %+v", idx)
	}
	var got []Event
	for i := 0; s.Next(); i++ {
		if *s.Summary() != idx.Blocks[i] {
			t.Fatalf("block %d: stream summary %+v != index %+v", i, *s.Summary(), idx.Blocks[i])
		}
		blk, err := s.DecodeIR()
		if err != nil {
			t.Fatal(err)
		}
		blk2, err := s.DecodeIR() // idempotent
		if err != nil || blk2 != blk {
			t.Fatalf("block %d: second DecodeIR: %p vs %p, %v", i, blk2, blk, err)
		}
		if blk.WritesDecoded {
			t.Fatalf("block %d: WritesDecoded before DecodeWrites", i)
		}
		if err := s.DecodeWrites(); err != nil {
			t.Fatal(err)
		}
		if !blk.WritesDecoded {
			t.Fatalf("block %d: WritesDecoded not set", i)
		}
		got = blk.AppendEvents(got)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatalf("streamed events differ:\n got %+v\nwant %+v", got, tr.Events)
	}
}

// TestDecodeWritesWithoutIR checks DecodeWrites runs DecodeIR
// implicitly.
func TestDecodeWritesWithoutIR(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteV3(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	for s.Next() {
		if err := s.DecodeWrites(); err != nil {
			t.Fatal(err)
		}
		blk, err := s.DecodeIR()
		if err != nil {
			t.Fatal(err)
		}
		got = blk.AppendEvents(got)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatal("events differ when DecodeWrites leads")
	}
}

// TestBlockSummarySemantics pins the skip-decision primitive: every
// written page answers true; NWrites==0 and out-of-range pages answer
// false.
func TestBlockSummarySemantics(t *testing.T) {
	tr := bigTrace(500)
	idx := tr.BuildBlockIndex(64)
	for bi, sum := range idx.Blocks {
		lo, hi := bi*64, (bi+1)*64
		if hi > len(tr.Events) {
			hi = len(tr.Events)
		}
		for _, e := range tr.Events[lo:hi] {
			if e.Kind != EvWrite {
				continue
			}
			if pn := uint32(e.BA) >> 12; !sum.MayContainWritePage(pn) {
				t.Fatalf("block %d: false negative for written page %d", bi, pn)
			}
		}
	}
	var empty BlockSummary
	if empty.MayContainWritePage(0) {
		t.Fatal("writeless summary claims page 0")
	}
	one := summarize([]Event{{Kind: EvWrite, BA: 0x400000, EA: 0x400004}})
	if one.MayContainWritePage(0x400000>>12 + 1) {
		t.Fatal("summary claims page above MaxPage")
	}
	if !one.MayContainWritePage(0x400000 >> 12) {
		t.Fatal("summary denies its own page")
	}
}

// TestOpenStreamRejectsNonV3 pins the error for v1/v2 inputs (those go
// through Read) and for garbage.
func TestOpenStreamRejectsNonV3(t *testing.T) {
	var v2 bytes.Buffer
	if err := sampleTrace().Write(&v2); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStream(bytes.NewReader(v2.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "cannot stream version 2") {
		t.Fatalf("v2 OpenStream error = %v", err)
	}
	v1 := writeV1(sampleTrace())
	if _, err := OpenStream(bytes.NewReader(v1)); err == nil ||
		!strings.Contains(err.Error(), "cannot stream version 1") {
		t.Fatalf("v1 OpenStream error = %v", err)
	}
	if _, err := OpenStream(strings.NewReader("XXXX")); err == nil ||
		!strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("garbage OpenStream error = %v", err)
	}
	if _, err := OpenStream(strings.NewReader("")); err == nil {
		t.Fatal("empty OpenStream succeeded")
	}
}

// TestFileSource round-trips through an on-disk v3 file and checks Open
// failures surface.
func TestFileSource(t *testing.T) {
	tr := sampleTrace()
	path := filepath.Join(t.TempDir(), "t.v3.trace")
	var buf bytes.Buffer
	if err := tr.WriteV3Blocks(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src := FileSource(path)
	s, err := src.Open()
	if err != nil {
		t.Fatal(err)
	}
	var got []Event
	for s.Next() {
		if err := s.DecodeWrites(); err != nil {
			t.Fatal(err)
		}
		blk, _ := s.DecodeIR()
		got = blk.AppendEvents(got)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatal("FileSource streamed events differ")
	}
	if _, err := FileSource(filepath.Join(t.TempDir(), "missing")).Open(); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

// TestV3Compactness keeps the columnar encoding honest: the delta+varint
// columns must beat the v2 row encoding on a real-shaped trace.
func TestV3Compactness(t *testing.T) {
	tr := bigTrace(4096)
	var v2, v3 bytes.Buffer
	if err := tr.Write(&v2); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteV3(&v3); err != nil {
		t.Fatal(err)
	}
	if v3.Len() >= v2.Len() {
		t.Fatalf("v3 (%d bytes) not smaller than v2 (%d bytes)", v3.Len(), v2.Len())
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 4096, -4096, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}

// TestFileSourceRejectsBadFile: an Open that reads a non-v3 file must
// fail (and close the descriptor) rather than hand back a stream.
func TestFileSourceRejectsBadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.trace")
	if err := os.WriteFile(path, []byte("not a trace at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FileSource(path).Open(); err == nil {
		t.Fatal("garbage file opened as a v3 stream")
	}
}
