package trace_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"edb/internal/arch"
	"edb/internal/objects"
	"edb/internal/sessions"
	"edb/internal/sim"
	"edb/internal/trace"
)

// Golden cross-version compatibility: tiny committed fixture files in
// every on-disk format (v1 legacy, v2 framed rows, v3 columnar blocks)
// must decode to identical events AND replay to the identical golden
// SHA-256 — the v3 fixture both materialised through Read and streamed
// through RunStream. Any codec drift that survives the round-trip
// tests (a re-encoded fixture would hide it) still fails here, because
// the bytes are frozen in git.
//
// Regenerate (only with an intended, reviewed format change):
//
//	EDB_REGEN_GOLDEN=1 go test -run TestCompatFixtures ./internal/trace/
const compatDir = "testdata/compat"

// compatTrace builds the fixture trace deterministically: a handful of
// globals and heap objects across several pages, interleaved writes
// (member and stray), and full teardown — 26 events, so the v3 fixture
// at 4 events/block spans 7 blocks with a partial tail.
func compatTrace() *trace.Trace {
	tab := objects.NewTable()
	ids := []objects.ID{
		tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "g0", SizeBytes: 8}),
		tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "g1", SizeBytes: 8}),
		tab.Add(objects.Object{Kind: objects.KindHeap, Name: "h0", SizeBytes: 16,
			AllocCtx: []string{"main", "build"}}),
		tab.Add(objects.Object{Kind: objects.KindHeap, Name: "h1", SizeBytes: 32,
			AllocCtx: []string{"main", "grow"}}),
	}
	tr := &trace.Trace{Program: "compat", BaseCycles: 1000, Instret: 2000, Objects: tab}
	ev := func(k trace.EventKind, obj int, ba, ea, pc arch.Addr) {
		tr.Events = append(tr.Events, trace.Event{Kind: k, Obj: ids[obj], BA: ba, EA: ea, PC: pc})
	}
	w := func(ba arch.Addr) {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.EvWrite, BA: ba, EA: ba + 4, PC: 0x10040})
	}
	g0 := arch.Addr(arch.GlobalBase)
	g1 := arch.Addr(arch.GlobalBase + 4096 - 4) // straddles a 4 KiB boundary
	h0 := arch.Addr(arch.HeapBase)
	h1 := arch.Addr(arch.HeapBase + 3*4096)
	ev(trace.EvInstall, 0, g0, g0+8, 0)
	ev(trace.EvInstall, 1, g1, g1+8, 0)
	w(g0)
	w(g0 + 4)
	ev(trace.EvInstall, 2, h0, h0+16, 0)
	w(h0 + 8)
	w(g1 + 4) // second page of the straddler
	w(arch.GlobalBase + 2*4096)
	ev(trace.EvInstall, 3, h1, h1+32, 0)
	w(h1)
	w(h1 + 28)
	ev(trace.EvRemove, 2, h0, h0+16, 0)
	w(h0) // write after remove: miss
	w(g1)
	w(arch.HeapBase + 8*4096) // stray page
	ev(trace.EvInstall, 2, h0, h0+16, 0)
	w(h0 + 4)
	w(g0)
	ev(trace.EvRemove, 3, h1, h1+32, 0)
	w(h1 + 4)
	w(g1 + 4)
	ev(trace.EvRemove, 2, h0, h0+16, 0)
	w(h0 + 12)
	w(g0 + 4)
	ev(trace.EvRemove, 1, g1, g1+8, 0)
	ev(trace.EvRemove, 0, g0, g0+8, 0)
	return tr
}

// replayHash returns the canonical SHA-256 of a replay output — the
// same serialisation internal/sim's golden suite pins: session count,
// total writes, then each session's counting variables, little-endian.
func replayHash(t *testing.T, out *sim.Output) string {
	t.Helper()
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(len(out.PerSession)))
	put(out.TotalWrites)
	for i := range out.PerSession {
		c := &out.PerSession[i]
		put(c.Installs)
		put(c.Removes)
		put(c.Hits)
		put(c.Misses)
		for psi := 0; psi < 2; psi++ {
			put(c.VM[psi].Protects)
			put(c.VM[psi].Unprotects)
			put(c.VM[psi].ActivePageMiss)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// v1Bytes re-frames a v2 encoding as legacy v1 (no length, no CRC —
// the body streamed directly after the version varint), using only the
// public writer: v2 is magic+version+uvarint(len)+crc32+payload, and
// v1 is magic+version+payload.
func v1Bytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var v2 bytes.Buffer
	if err := tr.Write(&v2); err != nil {
		t.Fatal(err)
	}
	b := v2.Bytes()
	i := len("EDBT") + 1 // magic + single-byte version varint
	n, w := binary.Uvarint(b[i:])
	if w <= 0 {
		t.Fatal("malformed v2 framing")
	}
	payload := b[i+w+4:]
	if uint64(len(payload)) != n {
		t.Fatalf("v2 payload length %d != declared %d", len(payload), n)
	}
	return append([]byte("EDBT\x01"), payload...)
}

func TestCompatFixtures(t *testing.T) {
	tr := compatTrace()
	regen := os.Getenv("EDB_REGEN_GOLDEN") != ""
	var v2, v3 bytes.Buffer
	if err := tr.Write(&v2); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteV3Blocks(&v3, 4); err != nil {
		t.Fatal(err)
	}
	fixtures := map[string][]byte{
		"tiny.v1.trace": v1Bytes(t, tr),
		"tiny.v2.trace": v2.Bytes(),
		"tiny.v3.trace": v3.Bytes(),
	}

	set := sessions.Discover(tr)
	ref, err := sim.Sequential(tr, set)
	if err != nil {
		t.Fatal(err)
	}
	goldenHash := replayHash(t, ref)

	if regen {
		if err := os.MkdirAll(compatDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range fixtures {
			if err := os.WriteFile(filepath.Join(compatDir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		golden, err := json.MarshalIndent(map[string]any{
			"replay_sha256": goldenHash,
			"events":        len(tr.Events),
			"sessions":      len(set.Sessions),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(compatDir, "golden.json"),
			append(golden, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (replay %s)", compatDir, goldenHash[:16])
	}

	var golden struct {
		ReplaySHA256 string `json:"replay_sha256"`
		Events       int    `json:"events"`
		Sessions     int    `json:"sessions"`
	}
	data, err := os.ReadFile(filepath.Join(compatDir, "golden.json"))
	if err != nil {
		t.Fatalf("reading golden (EDB_REGEN_GOLDEN=1 to create): %v", err)
	}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	if golden.Events != len(tr.Events) || golden.Sessions != len(set.Sessions) {
		t.Fatalf("fixture shape drifted: %d events / %d sessions, golden %d / %d",
			len(tr.Events), len(set.Sessions), golden.Events, golden.Sessions)
	}
	if goldenHash != golden.ReplaySHA256 {
		t.Fatalf("in-memory replay of the fixture trace drifted from golden:\n  got  %s\n  want %s",
			goldenHash, golden.ReplaySHA256)
	}

	for name, want := range fixtures {
		path := filepath.Join(compatDir, name)
		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (EDB_REGEN_GOLDEN=1 to create): %v", name, err)
		}
		// The committed bytes must be exactly what today's writers emit —
		// byte drift in any version is a format break.
		if !bytes.Equal(onDisk, want) {
			t.Errorf("%s: committed fixture differs from current encoder output", name)
		}
		got, err := trace.Read(bytes.NewReader(onDisk))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Events, tr.Events) {
			t.Errorf("%s: decoded events differ from fixture trace", name)
		}
		if !reflect.DeepEqual(got.Objects.All(), tr.Objects.All()) {
			t.Errorf("%s: decoded object table differs", name)
		}
		out, err := sim.Sequential(got, sessions.Discover(got))
		if err != nil {
			t.Fatal(err)
		}
		if h := replayHash(t, out); h != golden.ReplaySHA256 {
			t.Errorf("%s: replay hash %s != golden %s", name, h, golden.ReplaySHA256)
		}
	}

	// The v3 fixture must also replay to the golden hash when *streamed*
	// with block skipping — the fast path can never drift from the
	// materialised formats.
	streamed, err := sim.RunStream(trace.BytesSource(fixtures["tiny.v3.trace"]), set, sim.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h := replayHash(t, streamed); h != golden.ReplaySHA256 {
		t.Errorf("streamed v3 replay hash %s != golden %s", h, golden.ReplaySHA256)
	}
}
