package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"edb/internal/fault"
	"edb/internal/objects"
)

// writeIncremental serialises tr through the public incremental Writer
// (spooled mode), event by event.
func writeIncremental(t *testing.T, tr *Trace, blockEvents int, spoolDir string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{
		Program:     tr.Program,
		Objects:     tr.Objects,
		BlockEvents: blockEvents,
		SpoolDir:    spoolDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	w.SetCounters(tr.BaseCycles, tr.Instret)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV3WriterByteIdentical: the incremental spooled Writer and the
// direct WriteTo path must produce byte-identical files for every
// blocking — they are one emitter, and the differential suite at the
// repo root extends this to all five benchmark workloads.
func TestV3WriterByteIdentical(t *testing.T) {
	tr := sampleTrace()
	for _, be := range []int{1, 2, 3, 5, 0} {
		var direct bytes.Buffer
		if err := WriteTo(&direct, tr, WriteOptions{Version: 3, BlockEvents: be}); err != nil {
			t.Fatal(err)
		}
		inc := writeIncremental(t, tr, be, t.TempDir())
		if !bytes.Equal(direct.Bytes(), inc) {
			t.Fatalf("blockEvents=%d: incremental writer output differs from WriteTo", be)
		}
	}
}

// TestV3WriterSpoolRemoved: the spool temp file is gone after Close
// (and after Discard).
func TestV3WriterSpoolRemoved(t *testing.T) {
	dir := t.TempDir()
	tr := sampleTrace()
	writeIncremental(t, tr, 2, dir)
	w, err := NewWriter(io.Discard, WriterOptions{Program: "demo", Objects: tr.Objects, SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(tr.Events[0]); err != nil {
		t.Fatal(err)
	}
	w.Discard()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spool files left behind: %v", ents)
	}
}

// TestV3WriterFlush: an explicit Flush seals a partial block — the
// blocking changes but the decoded trace does not.
func TestV3WriterFlush(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{Program: tr.Program, Objects: tr.Objects, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	w.SetCounters(tr.BaseCycles, tr.Instret)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("flushed blocking decoded differently")
	}
	s, err := OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks != 2 {
		t.Fatalf("expected 2 blocks after mid-stream flush, got %d", s.NumBlocks)
	}
}

// TestV3WriterCounts: the writer's running tallies match the trace.
func TestV3WriterCounts(t *testing.T) {
	tr := sampleTrace()
	w, err := NewWriter(io.Discard, WriterOptions{Program: tr.Program, Objects: tr.Objects, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ins, rem, wri := w.Counts()
	wantIns, wantRem, wantWri := tr.Counts()
	if ins != uint64(wantIns) || rem != uint64(wantRem) || wri != uint64(wantWri) {
		t.Fatalf("Counts() = %d/%d/%d, want %d/%d/%d", ins, rem, wri, wantIns, wantRem, wantWri)
	}
	if w.NumEvents() != uint64(len(tr.Events)) {
		t.Fatalf("NumEvents() = %d, want %d", w.NumEvents(), len(tr.Events))
	}
}

// TestV3WriterMisuse: appends and flushes after Close fail, nil object
// tables are rejected, and unknown WriteTo versions error.
func TestV3WriterMisuse(t *testing.T) {
	tr := sampleTrace()
	w, err := NewWriter(io.Discard, WriterOptions{Program: "demo", Objects: tr.Objects, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(tr.Events[0]); err == nil || !strings.Contains(err.Error(), "append after Close") {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("second Close after misuse did not return the sticky error")
	}

	w2, err := NewWriter(io.Discard, WriterOptions{Program: "demo", Objects: tr.Objects, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err == nil || !strings.Contains(err.Error(), "flush after Close") {
		t.Fatalf("flush after close: %v", err)
	}

	if _, err := NewWriter(io.Discard, WriterOptions{Program: "demo"}); err == nil ||
		!strings.Contains(err.Error(), "nil object table") {
		t.Fatalf("nil table: %v", err)
	}
	if err := WriteTo(io.Discard, tr, WriteOptions{Version: 7}); err == nil ||
		!strings.Contains(err.Error(), "unsupported version 7") {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := NewWriter(io.Discard, WriterOptions{
		Program: "demo", Objects: tr.Objects, SpoolDir: filepath.Join(t.TempDir(), "missing"),
	}); err == nil || !strings.Contains(err.Error(), "creating spool") {
		t.Fatalf("bad spool dir: %v", err)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

var errSink = errors.New("sink failed")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errSink
	}
	if len(p) > f.budget {
		n := f.budget
		f.budget = 0
		return n, errSink
	}
	f.budget -= len(p)
	return len(p), nil
}

// TestV3WriterSinkError: a failing destination surfaces the error from
// Close and sticks.
func TestV3WriterSinkError(t *testing.T) {
	tr := sampleTrace()
	w, err := NewWriter(&failWriter{budget: 8}, WriterOptions{
		Program: tr.Program, Objects: tr.Objects, BlockEvents: 2, SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); !errors.Is(err, errSink) {
		t.Fatalf("Close() = %v, want sink error", err)
	}
	if err := w.Close(); !errors.Is(err, errSink) {
		t.Fatalf("second Close() = %v, want sticky sink error", err)
	}
	// Direct mode hits the same sink paths through WriteTo.
	if err := WriteTo(&failWriter{budget: 8}, tr, WriteOptions{Version: 3, BlockEvents: 2}); !errors.Is(err, errSink) {
		t.Fatalf("WriteTo = %v, want sink error", err)
	}
	if err := WriteTo(&failWriter{budget: 64}, tr, WriteOptions{Version: 3, BlockEvents: 2}); !errors.Is(err, errSink) {
		t.Fatalf("WriteTo (block) = %v, want sink error", err)
	}
}

// TestV3WriterFaultInjection: NewWriter fires the same SiteTraceWrite
// fault site as every serialisation entry point, before any byte or
// spool file exists.
func TestV3WriterFaultInjection(t *testing.T) {
	fault.Activate(fault.NewPlan(0, fault.Rule{
		Site: fault.SiteTraceWrite, Key: "demo", Kind: fault.Permanent, Times: 1}))
	defer fault.Deactivate()
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, WriterOptions{Program: "demo", Objects: objects.NewTable()}); err == nil {
		t.Fatal("armed write site did not fault")
	}
	if buf.Len() != 0 {
		t.Fatalf("faulted NewWriter still emitted %d bytes", buf.Len())
	}
}

// TestV3WriterCorruptionOrder: the per-frame corruption hook fires in
// final file order through the spooled writer exactly as it does
// through WriteTo — the mutated outputs are byte-identical, and the
// corruption is caught on read.
func TestV3WriterCorruptionOrder(t *testing.T) {
	const frames = 7 // header + 3 blocks x (summary, columns)
	tr := sampleTrace()
	for seed := int64(0); seed < 14; seed++ {
		plan := func() *fault.Plan {
			return fault.NewPlan(seed, fault.Rule{
				Site: fault.SiteTraceCorrupt, Kind: fault.Corrupt,
				After: uint64(seed) % frames, Times: 1})
		}
		fault.Activate(plan())
		var direct bytes.Buffer
		err := WriteTo(&direct, tr, WriteOptions{Version: 3, BlockEvents: 2})
		fault.Deactivate()
		if err != nil {
			t.Fatalf("seed %d: direct write: %v", seed, err)
		}

		fault.Activate(plan())
		var inc bytes.Buffer
		w, err := NewWriter(&inc, WriterOptions{
			Program: tr.Program, Objects: tr.Objects, BlockEvents: 2, SpoolDir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: NewWriter: %v", seed, err)
		}
		for _, e := range tr.Events {
			if err := w.Append(e); err != nil {
				t.Fatalf("seed %d: append: %v", seed, err)
			}
		}
		w.SetCounters(tr.BaseCycles, tr.Instret)
		err = w.Close()
		fault.Deactivate()
		if err != nil {
			t.Fatalf("seed %d: close: %v", seed, err)
		}

		if !bytes.Equal(direct.Bytes(), inc.Bytes()) {
			t.Fatalf("seed %d: corrupted outputs differ between direct and spooled paths", seed)
		}
		if _, err := Read(bytes.NewReader(inc.Bytes())); err == nil ||
			!strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("seed %d: injected corruption not caught: %v", seed, err)
		}
	}
}

// TestWriteToV2Shims: WriteTo with version 0/2 and the deprecated
// Write shim produce identical v2 files.
func TestWriteToV2Shims(t *testing.T) {
	tr := sampleTrace()
	var v0, v2, shim bytes.Buffer
	if err := WriteTo(&v0, tr, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTo(&v2, tr, WriteOptions{Version: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(&shim); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v0.Bytes(), v2.Bytes()) || !bytes.Equal(v0.Bytes(), shim.Bytes()) {
		t.Fatal("WriteTo v0/v2/shim outputs differ")
	}
}

// TestMaterialize: the source-first read path materialises v3 sources
// via the stream and v2 files via their raw bytes.
func TestMaterialize(t *testing.T) {
	tr := sampleTrace()
	var v3buf, v2buf bytes.Buffer
	if err := WriteTo(&v3buf, tr, WriteOptions{Version: 3, BlockEvents: 2}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTo(&v2buf, tr, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v3path := filepath.Join(dir, "t.v3")
	v2path := filepath.Join(dir, "t.v2")
	if err := os.WriteFile(v3path, v3buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2path, v2buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]StreamSource{
		"v3 file":   FileSource(v3path),
		"v2 file":   FileSource(v2path),
		"v3 bytes":  BytesSource(v3buf.Bytes()),
		"v2 bytes":  BytesSource(v2buf.Bytes()),
		"v3 shared": NewSharedSource(BytesSource(v3buf.Bytes())),
	} {
		got, err := Materialize(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Events, tr.Events) {
			t.Fatalf("%s: events mismatch", name)
		}
	}
	if _, err := Materialize(FileSource(filepath.Join(dir, "missing"))); err == nil {
		t.Fatal("materializing a missing file succeeded")
	}
}
