package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceRead hammers the binary decoders — the materialising Read
// across all three on-disk versions and the v3 streaming reader:
// arbitrary input must either decode into a trace that re-encodes and
// re-decodes to the same value (through both the v2 and v3 writers),
// or fail with an error — never crash, hang, or over-allocate, and
// never let Read and the streaming pass disagree about validity. The
// seed corpus combines in-memory seeds (valid v1/v2/v3 files,
// truncations and mutations of each, forged v3 block and column
// lengths, CRC-valid-but-lying summaries, per-column uvarint
// overflows) with the checked-in testdata/fuzz/FuzzTraceRead corpus
// derived from the five benchmark workloads' traces (regenerate with
// EDB_REGEN_FUZZ_CORPUS=1, see corpusgen_test.go).
func FuzzTraceRead(f *testing.F) {
	var v2 bytes.Buffer
	if err := sampleTrace().Write(&v2); err != nil {
		f.Fatal(err)
	}
	v1 := writeV1(sampleTrace())
	var v3 bytes.Buffer
	if err := sampleTrace().WriteV3Blocks(&v3, 2); err != nil {
		f.Fatal(err)
	}
	var v3one bytes.Buffer // degenerate 1-event blocks
	if err := sampleTrace().WriteV3Blocks(&v3one, 1); err != nil {
		f.Fatal(err)
	}
	const pn = uint64(0x400000 >> 12)
	seeds := [][]byte{
		v2.Bytes(),
		v1,
		v3.Bytes(),
		v3one.Bytes(),
		v2.Bytes()[:len(v2.Bytes())/2],
		v1[:len(v1)/2],
		v3.Bytes()[:len(v3.Bytes())/2],
		[]byte(magic),
		[]byte(magic + "\x02\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // absurd payload length
		[]byte(magic + "\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // absurd v1 string length
		[]byte(magic + "\x03\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // absurd v3 frame length
		{},
		// Handcrafted v3 adversaries (builders in corrupt_v3_test.go):
		// forged block count, lying summaries, overflowing columns,
		// forged sub-column lengths.
		v3File(v3Frame(v3Header(5, 1, 0))),
		v3File(v3Frame(v3Header(1, 1, 0)), v3Frame(v3Summary(1, 0, 7, 0)),
			v3Frame(v3Columns([8][]byte{0: {0}, 1: {0}, 2: {1}, 3: {0}, 4: {4}}))),
		v3File(v3Frame(v3Header(1, 1, 0)), v3Frame(v3Summary(1, 0, 0, 0, 7)),
			v3Frame(v3Columns([8][]byte{0: {0}, 1: {0}, 2: {1}, 3: {0}, 4: {4}}))),
		v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, uint32(pn))),
			v3Frame(v3Columns(oneWriteColumns(0x409000)))),
		v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, uint32(pn))),
			v3Frame(v3Columns(func() [8][]byte {
				c := oneWriteColumns(0x400000)
				c[5] = bytes.Repeat([]byte{0xff}, 11)
				return c
			}()))),
		v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, uint32(pn))),
			func() []byte {
				var buf bytes.Buffer
				putUv(&buf, 1<<30)
				return v3Frame(buf.Bytes())
			}()),
	}
	// One-byte mutants of the valid files reach deep decoder branches.
	for _, base := range [][]byte{v2.Bytes(), v1, v3.Bytes()} {
		for i := 0; i < len(base); i += 7 {
			mut := append([]byte(nil), base...)
			mut[i] ^= 0x40
			seeds = append(seeds, mut)
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		// A v3 file must stream exactly when it materialises: the two
		// readers share frame and column validation, and a divergence
		// would let the replay fast path accept what Read rejects.
		if len(data) > 4 && string(data[:4]) == magic && data[4] == 3 {
			if serr := streamAll(data); (serr == nil) != (err == nil) {
				t.Fatalf("Read err=%v but streaming pass err=%v", err, serr)
			}
		}
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		// Anything the decoder accepts must round-trip exactly through
		// the current writers — both the v2 row format and the v3
		// columnar format.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if tr2.Program != tr.Program || tr2.BaseCycles != tr.BaseCycles || tr2.Instret != tr.Instret {
			t.Fatalf("round-trip header drift: %+v vs %+v", tr2, tr)
		}
		if !reflect.DeepEqual(tr2.Events, tr.Events) {
			t.Fatal("round-trip event drift")
		}
		if !reflect.DeepEqual(tr2.Objects.All(), tr.Objects.All()) {
			t.Fatal("round-trip object-table drift")
		}
		buf.Reset()
		if err := tr.WriteV3Blocks(&buf, 3); err != nil {
			t.Fatalf("re-encoding accepted trace as v3: %v", err)
		}
		tr3, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding v3 re-encoding: %v", err)
		}
		if !reflect.DeepEqual(tr3.Events, tr.Events) {
			t.Fatal("v3 round-trip event drift")
		}
		if !reflect.DeepEqual(tr3.Objects.All(), tr.Objects.All()) {
			t.Fatal("v3 round-trip object-table drift")
		}
	})
}
