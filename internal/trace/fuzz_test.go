package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceRead hammers the binary decoder: arbitrary input must either
// decode into a trace that re-encodes and re-decodes to the same value,
// or fail with an error — never crash, hang, or over-allocate. The seed
// corpus combines in-memory seeds (a valid v2 file, a legacy v1 file,
// truncations and mutations of both) with the checked-in
// testdata/fuzz/FuzzTraceRead corpus derived from the five benchmark
// workloads' traces (regenerate with EDB_REGEN_FUZZ_CORPUS=1, see
// corpusgen_test.go).
func FuzzTraceRead(f *testing.F) {
	var v2 bytes.Buffer
	if err := sampleTrace().Write(&v2); err != nil {
		f.Fatal(err)
	}
	v1 := writeV1(sampleTrace())
	seeds := [][]byte{
		v2.Bytes(),
		v1,
		v2.Bytes()[:len(v2.Bytes())/2],
		v1[:len(v1)/2],
		[]byte(magic),
		[]byte(magic + "\x02\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // absurd payload length
		[]byte(magic + "\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"), // absurd v1 string length
		{},
	}
	// One-byte mutants of the valid files reach deep decoder branches.
	for _, base := range [][]byte{v2.Bytes(), v1} {
		for i := 0; i < len(base); i += 7 {
			mut := append([]byte(nil), base...)
			mut[i] ^= 0x40
			seeds = append(seeds, mut)
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		// Anything the decoder accepts must round-trip exactly through
		// the current writer.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
		if tr2.Program != tr.Program || tr2.BaseCycles != tr.BaseCycles || tr2.Instret != tr.Instret {
			t.Fatalf("round-trip header drift: %+v vs %+v", tr2, tr)
		}
		if !reflect.DeepEqual(tr2.Events, tr.Events) {
			t.Fatal("round-trip event drift")
		}
		if !reflect.DeepEqual(tr2.Objects.All(), tr.Objects.All()) {
			t.Fatal("round-trip object-table drift")
		}
	})
}
