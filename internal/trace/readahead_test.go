package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// v3TempFile writes sampleTrace as a v3 file and returns its path.
func v3TempFile(t *testing.T, blockEvents int) (string, *Trace) {
	t.Helper()
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteTo(&buf, tr, WriteOptions{Version: 3, BlockEvents: blockEvents}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.v3")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, tr
}

// TestFileSourceModes: every I/O strategy — default readahead, tiny
// windows, readahead disabled, mmap — decodes the same trace.
func TestFileSourceModes(t *testing.T) {
	path, tr := v3TempFile(t, 2)
	for name, src := range map[string]StreamSource{
		"default":      FileSource(path),
		"tiny window":  FileSourceWith(path, FileSourceOptions{ReadaheadBytes: 3}),
		"no readahead": FileSourceWith(path, FileSourceOptions{ReadaheadBytes: -1}),
		"mmap":         FileSourceWith(path, FileSourceOptions{Mmap: true}),
	} {
		got, err := Materialize(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Events, tr.Events) {
			t.Fatalf("%s: events mismatch", name)
		}
		s, err := src.Open()
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if s.Program != tr.Program {
			t.Fatalf("%s: program %q", name, s.Program)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
	if _, err := FileSourceWith(filepath.Join(t.TempDir(), "none"), FileSourceOptions{Mmap: true}).Open(); err == nil {
		t.Fatal("opening a missing file succeeded")
	}
}

// errReader fails after yielding its payload.
type errReader struct {
	data []byte
	err  error
}

func (e *errReader) Read(p []byte) (int, error) {
	if len(e.data) == 0 {
		return 0, e.err
	}
	n := copy(p, e.data)
	e.data = e.data[n:]
	return n, nil
}

func (e *errReader) Close() error { return nil }

// TestPrefetchReader: the prefetcher delivers all bytes across window
// boundaries, converts clean EOF, propagates mid-stream errors after
// the buffered bytes drain, and never leaks its producer on early
// Close.
func TestPrefetchReader(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefg"), 100)
	for _, window := range []int{1, 3, 64, 4096} {
		p := newPrefetchReader(io.NopCloser(bytes.NewReader(payload)), window)
		got, err := io.ReadAll(p)
		if err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("window %d: payload mismatch", window)
		}
		if n, err := p.Read(make([]byte, 1)); n != 0 || err != io.EOF {
			t.Fatalf("window %d: read after EOF = %d, %v", window, n, err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("window %d: close: %v", window, err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("window %d: double close: %v", window, err)
		}
	}

	boom := errors.New("disk gone")
	p := newPrefetchReader(&errReader{data: payload, err: boom}, 16)
	got, err := io.ReadAll(p)
	if !errors.Is(err, boom) {
		t.Fatalf("mid-stream error = %v, want %v", err, boom)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("bytes before the error were lost")
	}
	p.Close()

	// Early close with windows still in flight must not deadlock.
	p = newPrefetchReader(io.NopCloser(bytes.NewReader(payload)), 8)
	buf := make([]byte, 4)
	if _, err := io.ReadFull(p, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedSource: the first Open primes the header; later Opens
// share the same immutable object table (pointer-identical — the
// interning the decode pipeline relies on) and decode the same events.
func TestSharedSource(t *testing.T) {
	path, tr := v3TempFile(t, 2)
	for name, src := range map[string]StreamSource{
		"file":  FileSource(path),
		"bytes": func() StreamSource { d, _ := os.ReadFile(path); return BytesSource(d) }(),
	} {
		ss := NewSharedSource(src)
		s1, err := ss.Open()
		if err != nil {
			t.Fatalf("%s: first open: %v", name, err)
		}
		s2, err := ss.Open()
		if err != nil {
			t.Fatalf("%s: second open: %v", name, err)
		}
		if s1.Objects != s2.Objects {
			t.Fatalf("%s: object table not shared across opens", name)
		}
		if s2.NumEvents != uint64(len(tr.Events)) || s2.Program != tr.Program {
			t.Fatalf("%s: header not shared: %+v", name, s2)
		}
		var events []Event
		for s2.Next() {
			blk, err := s2.DecodeIR()
			if err != nil {
				t.Fatal(err)
			}
			if err := s2.DecodeWrites(); err != nil {
				t.Fatal(err)
			}
			events = blk.AppendEvents(events)
		}
		if err := s2.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(events, tr.Events) {
			t.Fatalf("%s: interned stream decoded differently", name)
		}
		s1.Close()
		s2.Close()
	}

	// Idempotent wrap and the no-seek fallback path.
	ss := NewSharedSource(BytesSource(nil))
	if NewSharedSource(ss) != ss {
		t.Fatal("re-wrapping a SharedSource allocated a new one")
	}
	plain := plainSource{path: path}
	pss := NewSharedSource(plain)
	if _, err := pss.Open(); err != nil {
		t.Fatal(err)
	}
	s, err := pss.Open() // falls back to a full open
	if err != nil {
		t.Fatal(err)
	}
	if s.Program != tr.Program {
		t.Fatalf("fallback open: program %q", s.Program)
	}
	s.Close()
}

// plainSource is a StreamSource with no section-open support, forcing
// SharedSource's fallback path.
type plainSource struct{ path string }

func (p plainSource) Open() (*Stream, error) {
	f, err := os.Open(p.path)
	if err != nil {
		return nil, err
	}
	s, err := OpenStream(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}
