// Incremental v3 writer — the single block emitter behind every trace
// serialisation path.
//
// WriteTo is the unified entry point: version 2 delegates to the
// monolithic checksummed codec (trace.go), version 3 runs the block
// emitter below in "direct" mode (totals known up front, frames stream
// straight out). NewWriter exposes the same emitter incrementally for
// producers — the tracer above all — that do not hold a materialised
// []Event: events are appended one at a time, finished blocks are
// encoded immediately and spooled to a temp file, and Close stitches
// the final file together (header first, then the spooled frames), so
// peak memory is one block of events plus one encoded frame no matter
// how large the trace grows.
//
// Chaos semantics are preserved exactly: fault.Inject(SiteTraceWrite)
// fires before any byte is emitted, and fault.Mutate(SiteTraceCorrupt)
// fires once per frame *in final file order* (header, then each
// block's summary and column frames), after that frame's CRC is taken
// — the spool stores pristine payloads plus their CRCs, and mutation
// is applied as frames are replayed into the destination at Close.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"edb/internal/fault"
	"edb/internal/objects"
)

// WriteOptions selects the serialisation format for WriteTo.
type WriteOptions struct {
	// Version is the binary format version: 0 or 2 emit the
	// checksummed version-2 format, 3 the columnar streaming format.
	Version int
	// BlockEvents is the events-per-block for version 3 (<= 0 selects
	// DefaultBlockEvents); ignored for version 2.
	BlockEvents int
}

// WriteTo serialises t in the requested format. It is the single
// serialisation entry point; Trace.Write, Trace.WriteV3 and
// Trace.WriteV3Blocks are deprecated shims over it.
func WriteTo(w io.Writer, t *Trace, o WriteOptions) error {
	switch o.Version {
	case 0, version:
		return t.writeV2(w)
	case version3:
		return writeV3(w, t, o.BlockEvents)
	default:
		return fmt.Errorf("trace: writing %s: unsupported version %d", t.Program, o.Version)
	}
}

// WriterOptions configures an incremental Writer.
type WriterOptions struct {
	// Program names the benchmark (header metadata and fault-site key).
	Program string
	// Objects is the object table events refer to. The table may keep
	// growing while events are appended (the tracer allocates heap
	// objects mid-run); the header snapshot is taken at Close.
	Objects *objects.Table
	// BlockEvents is the events-per-block (<= 0 selects
	// DefaultBlockEvents).
	BlockEvents int
	// SpoolDir is where the block spool temp file is created
	// ("" = os.TempDir()).
	SpoolDir string
}

// Writer emits a version-3 trace incrementally: Append streams events
// in, finished blocks are encoded and spooled as they fill, and Close
// writes the final file. The trace never materialises in memory.
//
// Close must be called to produce output (the v3 header carries totals
// and the object table, which are only known once the run ends);
// Discard abandons a partially written trace without emitting a byte.
type Writer struct {
	bw      *bufio.Writer
	program string
	tab     *objects.Table
	// blockEvents is the blocking; direct reports header-at-open mode
	// (totals declared up front, frames bypass the spool).
	blockEvents int
	direct      bool
	baseCycles  uint64
	instret     uint64

	pending []Event // current partial block (spooled mode)

	nBlocks  uint64
	nEvents  uint64
	nWrites  uint64
	installs uint64
	removes  uint64

	spool     *os.File
	spoolPath string
	spoolW    *bufio.Writer
	frames    []spoolFrame

	// Reusable encode scratch, mirroring the old WriteV3Blocks locals.
	cols    [8]bytes.Buffer
	frame   bytes.Buffer
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte

	err    error
	closed bool
}

// spoolFrame records one spooled frame's payload length and its CRC
// (taken at encode time, before any chaos mutation).
type spoolFrame struct {
	n   uint32
	crc uint32
}

// NewWriter starts an incremental v3 trace write to w. The fault
// injection site SiteTraceWrite fires here, before any byte is emitted.
func NewWriter(w io.Writer, o WriterOptions) (*Writer, error) {
	wr, err := newWriter(w, o, false)
	if err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(o.SpoolDir, "edb-trace-spool-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("trace: writing %s: creating spool: %w", o.Program, err)
	}
	wr.spool = f
	wr.spoolPath = f.Name()
	wr.spoolW = bufio.NewWriterSize(f, 1<<16)
	return wr, nil
}

// newWriter builds the shared emitter state. direct mode is the
// internal path used by WriteTo for a materialised Trace: the caller
// already knows the totals, so the header is written immediately and
// blocks stream straight to the destination with no spool.
func newWriter(w io.Writer, o WriterOptions, direct bool) (*Writer, error) {
	if err := fault.Inject(fault.SiteTraceWrite, o.Program); err != nil {
		return nil, fmt.Errorf("trace: writing %s: %w", o.Program, err)
	}
	if o.Objects == nil {
		return nil, fmt.Errorf("trace: writing %s: nil object table", o.Program)
	}
	be := o.BlockEvents
	if be <= 0 {
		be = DefaultBlockEvents
	}
	return &Writer{
		bw:          bufio.NewWriterSize(w, 1<<16),
		program:     o.Program,
		tab:         o.Objects,
		blockEvents: be,
		direct:      direct,
	}, nil
}

// SetCounters records the run counters for the header. Call before
// Close (the tracer only knows them once the machine halts).
func (w *Writer) SetCounters(baseCycles, instret uint64) {
	w.baseCycles, w.instret = baseCycles, instret
}

// Counts returns the number of install, remove and write events
// appended so far.
func (w *Writer) Counts() (installs, removes, writes uint64) {
	return w.installs, w.removes, w.nWrites
}

// NumEvents returns the number of events appended so far.
func (w *Writer) NumEvents() uint64 { return w.nEvents }

// Append adds one event to the trace, encoding and spooling the
// current block when it fills.
func (w *Writer) Append(e Event) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return w.fail(fmt.Errorf("trace: writing %s: append after Close", w.program))
	}
	w.pending = append(w.pending, e)
	if len(w.pending) >= w.blockEvents {
		return w.sealPending()
	}
	return nil
}

// Flush seals the current partial block and pushes it to the spool.
// Blocking is a pure layout parameter — any blocking decodes to the
// same trace — so flushing early only costs framing overhead.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return w.fail(fmt.Errorf("trace: writing %s: flush after Close", w.program))
	}
	return w.sealPending()
}

// sealPending encodes the pending events as one block and clears them.
func (w *Writer) sealPending() error {
	if len(w.pending) == 0 {
		return nil
	}
	err := w.writeBlock(w.pending)
	w.pending = w.pending[:0]
	return err
}

// fail records the sticky write error.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// emitFrame writes one frame (uvarint length, CRC, payload) to the
// destination, applying the per-frame corruption chaos hook. sum is
// the payload's CRC as taken at encode time, before mutation — so an
// injected bit flip is detectable by readers, modelling at-rest
// corruption.
func (w *Writer) emitFrame(payload []byte, sum uint32) error {
	fault.Mutate(fault.SiteTraceCorrupt, w.program, payload)
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], sum)
	if _, err := w.bw.Write(hdr[:n+4]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

// spoolFramePayload appends one encoded frame payload to the spool,
// recording its length and pre-mutation CRC for Close to replay.
func (w *Writer) spoolFramePayload(payload []byte) error {
	w.frames = append(w.frames, spoolFrame{n: uint32(len(payload)), crc: crc32.ChecksumIEEE(payload)})
	_, err := w.spoolW.Write(payload)
	return err
}

// writeBlock encodes one block (summary frame + column frame) and
// hands both payloads to the active sink: straight out in direct mode,
// onto the spool otherwise.
func (w *Writer) writeBlock(events []Event) error {
	sum := summarize(events)
	w.nBlocks++
	w.nEvents += uint64(sum.NEvents)
	w.nWrites += uint64(sum.NWrites)
	for i := range events {
		switch events[i].Kind {
		case EvInstall:
			w.installs++
		case EvRemove:
			w.removes++
		}
	}

	w.buf.Reset()
	putUvarint := func(b *bytes.Buffer, v uint64) {
		n := binary.PutUvarint(w.scratch[:], v)
		b.Write(w.scratch[:n])
	}
	putUvarint(&w.buf, uint64(sum.NEvents))
	putUvarint(&w.buf, uint64(sum.NWrites))
	putUvarint(&w.buf, uint64(sum.MinPage))
	putUvarint(&w.buf, uint64(sum.MaxPage-sum.MinPage))
	w.buf.Write(sum.Bloom[:])
	if err := w.sinkFrame(w.buf.Bytes()); err != nil {
		return w.fail(err)
	}

	for i := range w.cols {
		w.cols[i].Reset()
	}
	interleave := make([]byte, (len(events)+7)/8)
	kinds := make([]byte, (len(events)-sum.NWrites+7)/8)
	var prevIRBA, prevWrBA, prevPC int64
	ir := 0
	for i := range events {
		e := &events[i]
		if e.Kind == EvWrite {
			interleave[i>>3] |= 1 << (i & 7)
			ba := int64(uint32(e.BA))
			putUvarint(&w.cols[5], zigzag(ba-prevWrBA))
			prevWrBA = ba
			putUvarint(&w.cols[6], uint64(e.EA-e.BA))
			pc := int64(uint32(e.PC))
			putUvarint(&w.cols[7], zigzag(pc-prevPC))
			prevPC = pc
			continue
		}
		if e.Kind == EvRemove {
			kinds[ir>>3] |= 1 << (ir & 7)
		}
		ir++
		putUvarint(&w.cols[2], uint64(e.Obj))
		ba := int64(uint32(e.BA))
		putUvarint(&w.cols[3], zigzag(ba-prevIRBA))
		prevIRBA = ba
		putUvarint(&w.cols[4], uint64(e.EA-e.BA))
	}
	w.cols[0].Write(interleave)
	w.cols[1].Write(kinds)

	w.frame.Reset()
	for i := range w.cols {
		putUvarint(&w.frame, uint64(w.cols[i].Len()))
		w.frame.Write(w.cols[i].Bytes())
	}
	if err := w.sinkFrame(w.frame.Bytes()); err != nil {
		return w.fail(err)
	}
	return nil
}

// sinkFrame routes one encoded payload to the mode's sink.
func (w *Writer) sinkFrame(payload []byte) error {
	if w.direct {
		return w.emitFrame(payload, crc32.ChecksumIEEE(payload))
	}
	return w.spoolFramePayload(payload)
}

// writeHeader emits the file prologue: magic, version, and the header
// frame (metadata snapshot plus totals).
func (w *Writer) writeHeader() error {
	if _, err := w.bw.WriteString(magic); err != nil {
		return err
	}
	n := binary.PutUvarint(w.scratch[:], version3)
	if _, err := w.bw.Write(w.scratch[:n]); err != nil {
		return err
	}
	w.buf.Reset()
	writeMetaRaw(&w.buf, w.program, w.baseCycles, w.instret, w.tab)
	for _, v := range [3]uint64{w.nBlocks, w.nEvents, w.nWrites} {
		n := binary.PutUvarint(w.scratch[:], v)
		w.buf.Write(w.scratch[:n])
	}
	return w.emitFrame(w.buf.Bytes(), crc32.ChecksumIEEE(w.buf.Bytes()))
}

// Close seals the final block, writes the header, replays the spooled
// frames into the destination, and removes the spool. On a Writer that
// already failed it releases the spool and returns the sticky error.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	defer w.dropSpool()
	if w.err != nil {
		return w.err
	}
	if err := w.sealPending(); err != nil {
		return err
	}
	if !w.direct {
		if err := w.writeHeader(); err != nil {
			return w.fail(err)
		}
		if err := w.replaySpool(); err != nil {
			return w.fail(err)
		}
	}
	if err := w.bw.Flush(); err != nil {
		return w.fail(err)
	}
	return nil
}

// Discard abandons the write: the spool is released and nothing is
// ever emitted to the destination. Used when the traced run itself
// fails mid-stream.
func (w *Writer) Discard() {
	if !w.closed {
		w.closed = true
		w.fail(fmt.Errorf("trace: writing %s: discarded", w.program))
	}
	w.dropSpool()
}

// replaySpool streams the spooled frame payloads into the destination
// in file order, applying the per-frame chaos hook as each is emitted.
func (w *Writer) replaySpool() error {
	if err := w.spoolW.Flush(); err != nil {
		return err
	}
	if _, err := w.spool.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(w.spool, 1<<16)
	var payload []byte
	for _, f := range w.frames {
		if uint32(cap(payload)) < f.n {
			payload = make([]byte, f.n)
		}
		payload = payload[:f.n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("trace: writing %s: reading spool: %w", w.program, err)
		}
		if err := w.emitFrame(payload, f.crc); err != nil {
			return err
		}
	}
	return nil
}

// dropSpool closes and removes the spool temp file (idempotent).
func (w *Writer) dropSpool() {
	if w.spool != nil {
		w.spool.Close()
		os.Remove(w.spoolPath)
		w.spool = nil
	}
}

// writeV3 serialises a materialised trace through the block emitter in
// direct mode: totals are computed up front, the header goes out
// first, and each block is encoded from a subslice of t.Events — no
// spool, no event copies.
func writeV3(w io.Writer, t *Trace, blockEvents int) error {
	wr, err := newWriter(w, WriterOptions{
		Program:     t.Program,
		Objects:     t.Objects,
		BlockEvents: blockEvents,
	}, true)
	if err != nil {
		return err
	}
	wr.SetCounters(t.BaseCycles, t.Instret)
	nEvents := len(t.Events)
	nBlocks := 0
	if nEvents > 0 {
		nBlocks = (nEvents + wr.blockEvents - 1) / wr.blockEvents
	}
	_, _, nWrites := t.Counts()
	wr.nBlocks, wr.nEvents, wr.nWrites = uint64(nBlocks), uint64(nEvents), uint64(nWrites)
	if err := wr.writeHeader(); err != nil {
		return err
	}
	// The counters double as running tallies in spooled mode; reset so
	// writeBlock's increments land back on the declared totals.
	wr.nBlocks, wr.nEvents, wr.nWrites = 0, 0, 0
	for off := 0; off < nEvents; off += wr.blockEvents {
		end := off + wr.blockEvents
		if end > nEvents {
			end = nEvents
		}
		if err := wr.writeBlock(t.Events[off:end]); err != nil {
			return err
		}
	}
	return wr.Close()
}

// Materialize reads a full Trace out of a StreamSource — the
// source-first counterpart of Read for callers holding a StreamSource
// rather than an io.Reader. v1/v2 sources are materialised through
// Read when the source can reopen its raw bytes; v3 sources stream
// block-at-a-time.
func Materialize(src StreamSource) (*Trace, error) {
	if rs, ok := src.(rawSource); ok {
		rc, err := rs.openRaw()
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		return Read(rc)
	}
	s, err := src.Open()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return materializeStream(s)
}

// rawSource is implemented by sources that can hand out their
// underlying byte stream, letting Materialize accept v1/v2 files too.
type rawSource interface {
	openRaw() (io.ReadCloser, error)
}

// materializeStream drains a Stream into a Trace — shared by Read's v3
// path and Materialize.
func materializeStream(s *Stream) (*Trace, error) {
	t := &Trace{
		Program:    s.Program,
		BaseCycles: s.BaseCycles,
		Instret:    s.Instret,
		Objects:    s.Objects,
	}
	t.Events = make([]Event, 0, prealloc(s.NumEvents))
	for s.Next() {
		blk, err := s.DecodeIR()
		if err != nil {
			return nil, err
		}
		if err := s.DecodeWrites(); err != nil {
			return nil, err
		}
		t.Events = blk.AppendEvents(t.Events)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
