package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"edb/internal/fault"
)

// v3 corruption matrix: every frame region of the columnar format —
// magic, version, frame lengths, frame CRCs, header payload, summary
// payloads, column payloads — must turn into a typed byte-offset error
// on any single-bit flip, through both the materialising reader and a
// full streaming pass, and the decoder must reject CRC-valid frames
// whose *semantics* are corrupt (summaries that disown their own
// writes, bitmaps that contradict counts, overflowing varints).

// v3Sample serialises sampleTrace at 2 events/block: 3 blocks, so the
// file exercises the header frame plus three summary/column frame
// pairs (7 frames total).
func v3Sample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sampleTrace().WriteV3Blocks(&buf, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamAll runs a complete streaming pass — open, every block's IR and
// write columns, final totals check — and returns the first error.
func streamAll(data []byte) error {
	s, err := OpenStream(bytes.NewReader(data))
	if err != nil {
		return err
	}
	for s.Next() {
		if _, err := s.DecodeIR(); err != nil {
			return err
		}
		if err := s.DecodeWrites(); err != nil {
			return err
		}
	}
	return s.Err()
}

// framePayloadRanges walks the v3 framing and returns the byte ranges
// occupied by frame payloads (the CRC-protected regions).
func framePayloadRanges(t *testing.T, data []byte) [][2]int {
	t.Helper()
	var ranges [][2]int
	pos := len(magic) + 1 // single-byte version varint
	for pos < len(data) {
		plen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			t.Fatalf("bad frame length at %d", pos)
		}
		start := pos + n + 4
		ranges = append(ranges, [2]int{start, start + int(plen)})
		pos = start + int(plen)
	}
	return ranges
}

// TestV3ReadRejectsEveryBitFlip is the exhaustive corruption matrix:
// flipping any single bit anywhere in a v3 file must produce an error
// carrying a byte offset — from Read and from the streaming reader —
// and flips inside CRC-protected payloads must be caught by the
// checksum itself.
func TestV3ReadRejectsEveryBitFlip(t *testing.T) {
	full := v3Sample(t)
	payloads := framePayloadRanges(t, full)
	inPayload := func(i int) bool {
		for _, r := range payloads {
			if i >= r[0] && i < r[1] {
				return true
			}
		}
		return false
	}
	for byteIdx := 0; byteIdx < len(full); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[byteIdx] ^= 1 << bit
			got, err := Read(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("flip at byte %d bit %d decoded cleanly via Read: %+v", byteIdx, bit, got)
			}
			if !strings.Contains(err.Error(), "byte offset") {
				t.Fatalf("flip at byte %d bit %d: diagnostic %q lacks byte offset", byteIdx, bit, err)
			}
			if inPayload(byteIdx) && !strings.Contains(err.Error(), "checksum mismatch") {
				t.Fatalf("payload flip at byte %d bit %d not caught by checksum: %v", byteIdx, bit, err)
			}
			if byteIdx >= len(magic)+1 {
				// Flips at or after the first frame must also fail the
				// streaming pass (magic/version flips turn the file into
				// a non-v3 one, which OpenStream rejects separately).
				if err := streamAll(mut); err == nil {
					t.Fatalf("flip at byte %d bit %d streamed cleanly", byteIdx, bit)
				}
			}
		}
	}
}

// TestV3StreamRejectsEveryTruncation: cutting a v3 file anywhere fails
// the streaming pass with a byte-offset diagnostic.
func TestV3StreamRejectsEveryTruncation(t *testing.T) {
	full := v3Sample(t)
	for cut := 0; cut < len(full); cut++ {
		err := streamAll(full[:cut])
		if err == nil {
			t.Fatalf("truncation at %d streamed cleanly", cut)
		}
		if cut >= len(magic)+1 && !strings.Contains(err.Error(), "byte offset") {
			t.Errorf("truncation at %d: diagnostic %q lacks byte offset", cut, err)
		}
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded cleanly via Read", cut)
		}
	}
}

// --- CRC-valid-but-semantically-bad frames -------------------------

// v3Frame wraps a payload in valid framing (length, correct CRC32), so
// post-checksum decode defences are reachable.
func v3Frame(payload []byte) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(payload)))
	buf.Write(scratch[:n])
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	buf.Write(crcBuf[:])
	buf.Write(payload)
	return buf.Bytes()
}

// v3File assembles magic + version + the given frames.
func v3File(frames ...[]byte) []byte {
	out := []byte(magic + "\x03")
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

func putUv(buf *bytes.Buffer, v uint64) {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	buf.Write(scratch[:n])
}

// v3Header builds a minimal header payload: program "x", no objects,
// and the given totals.
func v3Header(nBlocks, nEvents, nWrites uint64) []byte {
	var buf bytes.Buffer
	putUv(&buf, 1)
	buf.WriteString("x") // program
	putUv(&buf, 0)       // base cycles
	putUv(&buf, 0)       // instret
	putUv(&buf, 0)       // objects
	putUv(&buf, nBlocks)
	putUv(&buf, nEvents)
	putUv(&buf, nWrites)
	return buf.Bytes()
}

// v3Summary builds a summary payload from raw fields.
func v3Summary(nEvents, nWrites, minPage, span uint64, bloomPages ...uint32) []byte {
	var buf bytes.Buffer
	putUv(&buf, nEvents)
	putUv(&buf, nWrites)
	putUv(&buf, minPage)
	putUv(&buf, span)
	var bloom [bloomBytes]byte
	for _, pn := range bloomPages {
		b := pageBloomBit(pn)
		bloom[b>>3] |= 1 << (b & 7)
	}
	buf.Write(bloom[:])
	return buf.Bytes()
}

// v3Columns builds a column payload from 8 raw sub-columns.
func v3Columns(cols [8][]byte) []byte {
	var buf bytes.Buffer
	for _, c := range cols {
		putUv(&buf, uint64(len(c)))
		buf.Write(c)
	}
	return buf.Bytes()
}

// oneWriteColumns encodes a single write event at ba (4-byte span).
func oneWriteColumns(ba uint32) [8][]byte {
	var wrBA bytes.Buffer
	putUv(&wrBA, zigzag(int64(ba)))
	return [8][]byte{
		0: {0x01},       // interleave: event 0 is a write
		1: {},           // kind bitmap: no IR events
		5: wrBA.Bytes(), // write BA delta
		6: {4},          // write length
		7: {0},          // write PC delta
	}
}

// TestV3RejectsSemanticallyBadFrames: frames whose checksums verify but
// whose contents are self-contradictory must be rejected with the
// documented diagnostics — never decoded, never skipped over.
func TestV3RejectsSemanticallyBadFrames(t *testing.T) {
	const pn = 0x400000 >> 12
	goodCols := v3Columns(oneWriteColumns(0x400000))
	overflow := bytes.Repeat([]byte{0xff}, 11) // uvarint > 64 bits
	cases := []struct {
		name string
		file []byte
		want string
	}{
		{"summary pages on writeless block",
			v3File(v3Frame(v3Header(1, 1, 0)), v3Frame(v3Summary(1, 0, 7, 0)),
				v3Frame(v3Columns([8][]byte{0: {0}, 1: {0}, 2: {1}, 3: {0}, 4: {4}}))),
			"page summary on a writeless block"},
		{"bloom bits on writeless block",
			v3File(v3Frame(v3Header(1, 1, 0)), v3Frame(v3Summary(1, 0, 0, 0, 7)),
				v3Frame(v3Columns([8][]byte{0: {0}, 1: {0}, 2: {1}, 3: {0}, 4: {4}}))),
			"bloom bits on a writeless block"},
		{"write escapes summary",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(v3Columns(oneWriteColumns(0x409000)))),
			"escapes the block page summary"},
		{"interleave contradicts summary",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(v3Columns([8][]byte{0: {0x00}, 1: {0}, 2: {1}, 3: {0}, 4: {4}}))),
			"interleave bitmap marks 0 writes"},
		{"interleave padding bits set",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(v3Columns(func() [8][]byte {
					c := oneWriteColumns(0x400000)
					c[0] = []byte{0x81} // bit 7 pads a 1-event block
					return c
				}()))),
			"non-zero padding bits"},
		{"uvarint overflow in write column",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(v3Columns(func() [8][]byte {
					c := oneWriteColumns(0x400000)
					c[5] = overflow
					return c
				}()))),
			"uvarint overflows 64 bits"},
		{"uvarint overflow in obj column",
			v3File(v3Frame(v3Header(1, 1, 0)), v3Frame(v3Summary(1, 0, 0, 0)),
				v3Frame(v3Columns([8][]byte{0: {0}, 1: {0}, 2: overflow, 3: {0}, 4: {4}}))),
			"uvarint overflows 64 bits"},
		{"truncated column",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(v3Columns(func() [8][]byte {
					c := oneWriteColumns(0x400000)
					c[6] = nil // write-length column missing
					return c
				}()))),
			"wrLen column"},
		{"forged sub-column length",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				func() []byte {
					var buf bytes.Buffer
					putUv(&buf, 1<<30) // interleave claims 2^30 bytes
					return v3Frame(buf.Bytes())
				}()),
			"exceeds"},
		{"block count exceeds events",
			v3File(v3Frame(v3Header(5, 1, 0))),
			"block count 5 inconsistent"},
		{"header writes exceed events",
			v3File(v3Frame(v3Header(1, 1, 2))),
			"write count 2 exceeds event count 1"},
		{"fewer blocks than declared",
			v3File(v3Frame(v3Header(2, 4, 2)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(goodCols)),
			"byte offset"},
		{"block overruns header totals",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(2, 2, pn, 0, pn)),
				v3Frame(v3Columns([8][]byte{0: {0x03}, 1: {}, 5: {0, 0}, 6: {4, 4}, 7: {0, 0}}))),
			"overruns header totals"},
		{"totals short of header",
			v3File(v3Frame(v3Header(2, 4, 2)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(goodCols), v3Frame(v3Summary(1, 1, pn, 0, pn)), v3Frame(goodCols)),
			"header declared"},
		{"trailing data after last block",
			append(v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(goodCols)), 0xff),
			"after last block"},
		{"event count unbackable by columns",
			v3File(v3Frame(v3Header(1, 1<<20, 0)), v3Frame(v3Summary(1<<20, 0, 0, 0)),
				v3Frame(v3Columns([8][]byte{}))),
			"cannot fit"},
		{"absurd block event count",
			v3File(v3Frame(v3Header(1, 1<<30, 0)), v3Frame(v3Summary(1<<30, 0, 0, 0)),
				v3Frame(v3Columns([8][]byte{}))),
			"bad event count"},
		{"page summary beyond address space",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, 1<<21, 0, 1<<21)),
				v3Frame(goodCols)),
			"beyond the 32-bit address space"},
		{"summary missing bloom",
			v3File(v3Frame(v3Header(1, 1, 1)),
				func() []byte {
					var buf bytes.Buffer
					putUv(&buf, 1)
					putUv(&buf, 1)
					putUv(&buf, pn)
					putUv(&buf, 0)
					buf.Write(make([]byte, 8)) // 8 bloom bytes instead of 32
					return v3Frame(buf.Bytes())
				}(), v3Frame(goodCols)),
			"bloom bytes"},
		{"trailing bytes in column frame",
			v3File(v3Frame(v3Header(1, 1, 1)), v3Frame(v3Summary(1, 1, pn, 0, pn)),
				v3Frame(append(goodCols, 0x00))),
			"trailing bytes"},
	}
	for _, c := range cases {
		err := streamAll(c.file)
		if err == nil {
			t.Errorf("%s: streamed cleanly", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: diagnostic %q lacks %q", c.name, err, c.want)
		}
		if !strings.Contains(err.Error(), "byte offset") {
			t.Errorf("%s: diagnostic %q lacks byte offset", c.name, err)
		}
		if _, err := Read(bytes.NewReader(c.file)); err == nil {
			t.Errorf("%s: decoded cleanly via Read", c.name)
		}
	}
}

// TestV3CorruptionInjectionCaught: the per-frame post-checksum fault
// hook (fault.SiteTraceCorrupt) flips one bit in any of the file's 7
// frames depending on the rule's After window; every such at-rest
// corruption must be caught on read. The write-side half of the chaos
// contract for the columnar format.
func TestV3CorruptionInjectionCaught(t *testing.T) {
	const frames = 7 // header + 3 blocks x (summary, columns)
	for seed := int64(0); seed < 21; seed++ {
		fault.Activate(fault.NewPlan(seed, fault.Rule{
			Site: fault.SiteTraceCorrupt, Kind: fault.Corrupt,
			After: uint64(seed) % frames, Times: 1}))
		var buf bytes.Buffer
		err := sampleTrace().WriteV3Blocks(&buf, 2)
		fault.Deactivate()
		if err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatalf("seed %d: corrupted v3 trace decoded cleanly", seed)
		} else if !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("seed %d: corruption not caught by checksum: %v", seed, err)
		}
		if err := streamAll(buf.Bytes()); err == nil ||
			!strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("seed %d: streaming pass missed the corruption: %v", seed, err)
		}
	}
}

// TestV3WriteFaultInjection: WriteV3 shares trace.Write's error site.
func TestV3WriteFaultInjection(t *testing.T) {
	fault.Activate(fault.NewPlan(0, fault.Rule{
		Site: fault.SiteTraceWrite, Key: "demo", Kind: fault.Permanent, Times: 1}))
	defer fault.Deactivate()
	var buf bytes.Buffer
	if err := sampleTrace().WriteV3(&buf); err == nil {
		t.Fatal("armed write site did not fault")
	}
	if buf.Len() != 0 {
		t.Fatalf("faulted WriteV3 still emitted %d bytes", buf.Len())
	}
	if err := sampleTrace().WriteV3(&buf); err != nil {
		t.Fatalf("retry after transient window: %v", err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("retried WriteV3 does not round-trip: %v", err)
	}
}

// TestOpenStreamFaultInjection: OpenStream shares trace.Read's fault
// site.
func TestOpenStreamFaultInjection(t *testing.T) {
	data := v3Sample(t)
	fault.Activate(fault.NewPlan(0, fault.Rule{
		Site: fault.SiteTraceRead, Kind: fault.Transient, Times: 1}))
	defer fault.Deactivate()
	if _, err := OpenStream(bytes.NewReader(data)); !fault.IsTransient(err) {
		t.Fatalf("armed read site returned %v", err)
	}
	if err := streamAll(data); err != nil {
		t.Fatalf("stream after transient window: %v", err)
	}
}
