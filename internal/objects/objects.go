// Package objects models the debuggee's program objects — the entities
// monitor sessions are defined over: local automatic variables, local
// statics, global statics, and heap objects.
//
// Each object has a stable identity across the whole run. For locals
// that identity covers *every instantiation* of the variable (the paper:
// "All instantiations of the variable belong to the same monitor
// session"); for heap objects it survives realloc (§5, footnote 4).
package objects

import (
	"fmt"
	"sort"
)

// Kind classifies a program object.
type Kind uint8

// Object kinds.
const (
	KindLocalAuto Kind = iota
	KindLocalStatic
	KindGlobal
	KindHeap
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindLocalAuto:
		return "local-auto"
	case KindLocalStatic:
		return "local-static"
	case KindGlobal:
		return "global"
	case KindHeap:
		return "heap"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ID identifies an object within one trace.
type ID uint32

// NoID is the zero, invalid object ID. Valid IDs start at 1.
const NoID ID = 0

// Object describes one program object.
type Object struct {
	ID   ID
	Kind Kind
	// Func is the declaring function for locals and statics ("" for
	// globals and heap objects).
	Func string
	// Name is the variable name, or a synthetic "heap#N" for heap
	// objects.
	Name string
	// SizeBytes is the object's (initial) size.
	SizeBytes int
	// AllocCtx lists, for heap objects, the distinct functions that were
	// on the call stack when the object was allocated — the objects that
	// belong to each of those functions' AllHeapInFunc sessions.
	AllocCtx []string
}

// Table is the object table of one trace.
type Table struct {
	objs []Object // objs[i] has ID i+1
}

// NewTable returns an empty object table.
func NewTable() *Table { return &Table{} }

// Add registers a new object and assigns its ID.
func (t *Table) Add(o Object) ID {
	o.ID = ID(len(t.objs) + 1)
	t.objs = append(t.objs, o)
	return o.ID
}

// Get returns the object with the given ID.
func (t *Table) Get(id ID) (Object, bool) {
	if id == NoID || int(id) > len(t.objs) {
		return Object{}, false
	}
	return t.objs[id-1], true
}

// MustGet returns the object or panics; for internal consistency paths.
func (t *Table) MustGet(id ID) Object {
	o, ok := t.Get(id)
	if !ok {
		panic(fmt.Sprintf("objects: no object %d", id))
	}
	return o
}

// Len returns the number of objects.
func (t *Table) Len() int { return len(t.objs) }

// All returns the objects in ID order. The slice is shared; callers must
// not mutate it.
func (t *Table) All() []Object { return t.objs }

// Funcs returns the sorted set of distinct function names that appear as
// declarers or allocation contexts.
func (t *Table) Funcs() []string {
	set := make(map[string]bool)
	for _, o := range t.objs {
		if o.Func != "" {
			set[o.Func] = true
		}
		for _, f := range o.AllocCtx {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// CountByKind tallies objects per kind.
func (t *Table) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, o := range t.objs {
		m[o.Kind]++
	}
	return m
}
