package objects

import (
	"reflect"
	"testing"
)

func TestAddGet(t *testing.T) {
	tab := NewTable()
	id1 := tab.Add(Object{Kind: KindGlobal, Name: "g"})
	id2 := tab.Add(Object{Kind: KindLocalAuto, Func: "f", Name: "x"})
	if id1 != 1 || id2 != 2 {
		t.Errorf("ids = %d, %d", id1, id2)
	}
	o, ok := tab.Get(id2)
	if !ok || o.Name != "x" || o.Func != "f" || o.ID != id2 {
		t.Errorf("Get(2) = %+v, %v", o, ok)
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestGetInvalid(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.Get(NoID); ok {
		t.Error("Get(NoID) should fail")
	}
	if _, ok := tab.Get(5); ok {
		t.Error("Get(out of range) should fail")
	}
}

func TestMustGetPanics(t *testing.T) {
	tab := NewTable()
	defer func() {
		if recover() == nil {
			t.Error("MustGet on empty table should panic")
		}
	}()
	tab.MustGet(1)
}

func TestFuncs(t *testing.T) {
	tab := NewTable()
	tab.Add(Object{Kind: KindLocalAuto, Func: "zeta", Name: "x"})
	tab.Add(Object{Kind: KindGlobal, Name: "g"})
	tab.Add(Object{Kind: KindHeap, Name: "heap#1", AllocCtx: []string{"main", "alpha"}})
	got := tab.Funcs()
	want := []string{"alpha", "main", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Funcs() = %v, want %v", got, want)
	}
}

func TestCountByKind(t *testing.T) {
	tab := NewTable()
	tab.Add(Object{Kind: KindGlobal})
	tab.Add(Object{Kind: KindGlobal})
	tab.Add(Object{Kind: KindHeap})
	tab.Add(Object{Kind: KindLocalAuto})
	tab.Add(Object{Kind: KindLocalStatic})
	got := tab.CountByKind()
	if got[KindGlobal] != 2 || got[KindHeap] != 1 || got[KindLocalAuto] != 1 || got[KindLocalStatic] != 1 {
		t.Errorf("CountByKind = %v", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindLocalAuto: "local-auto", KindLocalStatic: "local-static",
		KindGlobal: "global", KindHeap: "heap",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
