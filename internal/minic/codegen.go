package minic

import (
	"fmt"

	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/isa"
	"edb/internal/kernel"
)

// Register conventions used by generated code.
const (
	regRV      = isa.Reg(1)  // return value
	regArgBase = isa.Reg(2)  // first argument register (r2..r9)
	maxArgs    = 8           //
	regTmpBase = isa.Reg(10) // expression-stack registers r10..r23
	maxTmps    = 14          //
)

// Builtin arities; -1 is unused.
var builtins = map[string]int{
	"print":   1,
	"alloc":   1,
	"free":    1,
	"realloc": 2,
	"cycles":  0,
	"bzero":   2,
}

type localInfo struct {
	off   int32 // base address is fp-off
	words int
}

type funcSig struct {
	params int
}

// Compile translates mini-C source into a symbolic assembly program
// ready for asm.Assemble (or for instrumentation by the patching WMS
// strategies first).
func Compile(src string) (*asm.Program, error) {
	u, err := parse(src)
	if err != nil {
		return nil, err
	}
	return compileUnit(u)
}

// CompileToImage is a convenience wrapper: compile and assemble.
func CompileToImage(src string) (*asm.Image, error) {
	p, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(p)
}

func compileUnit(u *unit) (*asm.Program, error) {
	p := &asm.Program{Entry: "_start"}

	// Global symbols.
	globals := make(map[string]*globalDecl)
	for i := range u.globals {
		g := &u.globals[i]
		if globals[g.name] != nil {
			return nil, &Error{Line: g.line, Msg: fmt.Sprintf("duplicate global %q", g.name)}
		}
		globals[g.name] = g
		words := g.size
		if words == 0 {
			words = 1
		}
		init := make([]arch.Word, len(g.init))
		for i, v := range g.init {
			init[i] = arch.Word(v)
		}
		p.Globals = append(p.Globals, asm.Global{Name: g.name, SizeWords: words, Init: init})
	}

	// Function signatures.
	sigs := make(map[string]funcSig)
	for _, f := range u.funcs {
		if _, dup := sigs[f.name]; dup {
			return nil, &Error{Line: f.line, Msg: fmt.Sprintf("duplicate function %q", f.name)}
		}
		if _, isB := builtins[f.name]; isB {
			return nil, &Error{Line: f.line, Msg: fmt.Sprintf("%q is a builtin", f.name)}
		}
		if len(f.params) > maxArgs {
			return nil, &Error{Line: f.line, Msg: fmt.Sprintf("%q has more than %d parameters", f.name, maxArgs)}
		}
		sigs[f.name] = funcSig{params: len(f.params)}
	}
	if _, ok := sigs["main"]; !ok {
		return nil, &Error{Line: 1, Msg: "no main function"}
	}

	// _start: call main, exit with its result.
	start := p.AddFunc("_start")
	start.Emit(asm.Call("main"))
	start.Emit(asm.I(isa.ADDI, kernel.RegArg0, regRV, 0))
	start.Emit(asm.Sys(kernel.SysExit))

	for i := range u.funcs {
		if err := compileFunc(p, &u.funcs[i], globals, sigs); err != nil {
			return nil, err
		}
	}
	return p, nil
}

type cg struct {
	p       *asm.Program
	f       *asm.Func
	fn      *funcDecl
	globals map[string]*globalDecl
	sigs    map[string]funcSig
	locals  map[string]localInfo
	statics map[string]string // local static name -> mangled global symbol

	sp        int // expression-stack depth
	labelN    int
	spillBase int32 // fp-offset of spill slot 0
	breakLbl  []string
	contLbl   []string
}

func compileFunc(p *asm.Program, fn *funcDecl, globals map[string]*globalDecl, sigs map[string]funcSig) error {
	c := &cg{
		p: p, fn: fn, globals: globals, sigs: sigs,
		locals:  make(map[string]localInfo),
		statics: make(map[string]string),
	}
	c.f = p.AddFunc(fn.name)

	// Frame layout: collect params and every local declaration in the
	// body (flat function scope, C89 style).
	localBytes := int32(0)
	addLocal := func(name string, words int, line int) error {
		if _, dup := c.locals[name]; dup {
			return &Error{Line: line, Msg: fmt.Sprintf("duplicate local %q in %q", name, fn.name)}
		}
		if _, dup := c.statics[name]; dup {
			return &Error{Line: line, Msg: fmt.Sprintf("duplicate local %q in %q", name, fn.name)}
		}
		localBytes += int32(4 * words)
		c.locals[name] = localInfo{off: 8 + localBytes, words: words}
		c.f.Locals = append(c.f.Locals, asm.Local{Name: name, Offset: 8 + localBytes, SizeWords: words})
		return nil
	}
	for _, prm := range fn.params {
		if err := addLocal(prm, 1, fn.line); err != nil {
			return err
		}
	}
	var collect func(stmts []stmt) error
	collect = func(stmts []stmt) error {
		for _, s := range stmts {
			switch st := s.(type) {
			case declStmt:
				if st.static {
					sym := fn.name + "$" + st.name
					if _, dup := c.statics[st.name]; dup {
						return &Error{Line: st.line, Msg: fmt.Sprintf("duplicate static %q", st.name)}
					}
					if _, dup := c.locals[st.name]; dup {
						return &Error{Line: st.line, Msg: fmt.Sprintf("duplicate local %q", st.name)}
					}
					c.statics[st.name] = sym
					words := st.size
					if words == 0 {
						words = 1
					}
					init := make([]arch.Word, len(st.sinit))
					for i, v := range st.sinit {
						init[i] = arch.Word(v)
					}
					p.Globals = append(p.Globals, asm.Global{Name: sym, SizeWords: words, Init: init})
					c.f.Statics = append(c.f.Statics, sym)
				} else {
					words := st.size
					if words == 0 {
						words = 1
					}
					if err := addLocal(st.name, words, st.line); err != nil {
						return err
					}
				}
			case ifStmt:
				if err := collect(st.then); err != nil {
					return err
				}
				if err := collect(st.els); err != nil {
					return err
				}
			case whileStmt:
				if err := collect(st.body); err != nil {
					return err
				}
			case forStmt:
				if st.init != nil {
					if err := collect([]stmt{st.init}); err != nil {
						return err
					}
				}
				if err := collect(st.body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := collect(fn.body); err != nil {
		return err
	}

	// Spill area for caller-saved expression temporaries.
	c.spillBase = 8 + localBytes + 4
	frameBytes := arch.AlignUp(arch.Addr(8+localBytes+4*maxTmps), 8)
	c.f.FrameWords = int(frameBytes) / 4

	// Prologue. Saved RA/FP are implicit (register-spill) writes and do
	// not appear in the event trace, per §6.
	F := int32(frameBytes)
	c.f.Emit(asm.I(isa.ADDI, isa.SP, isa.SP, -F))
	c.f.Emit(asm.SwImplicit(isa.RA, isa.SP, F-4))
	c.f.Emit(asm.SwImplicit(isa.FP, isa.SP, F-8))
	c.f.Emit(asm.I(isa.ADDI, isa.FP, isa.SP, F))
	// Parameter stores initialise user-visible variables and are traced.
	for i, prm := range fn.params {
		li := c.locals[prm]
		c.f.Emit(asm.Sw(regArgBase+isa.Reg(i), isa.FP, -li.off))
	}

	// Body.
	if err := c.genStmts(fn.body); err != nil {
		return err
	}

	// Implicit `return 0` fall-through, then the epilogue.
	c.f.Emit(asm.I(isa.ADDI, regRV, isa.R0, 0))
	c.f.Mark("$ret")
	c.f.Emit(asm.Lw(isa.RA, isa.FP, -4))
	c.f.Emit(asm.Lw(isa.AT, isa.FP, -8))
	c.f.Emit(asm.I(isa.ADDI, isa.SP, isa.FP, 0))
	c.f.Emit(asm.I(isa.ADDI, isa.FP, isa.AT, 0))
	c.f.Emit(asm.Ret())
	return nil
}

// ---- expression-stack helpers ----

func (c *cg) push() (isa.Reg, error) {
	if c.sp >= maxTmps {
		return 0, &Error{Line: c.fn.line, Msg: fmt.Sprintf("expression too complex in %q", c.fn.name)}
	}
	r := regTmpBase + isa.Reg(c.sp)
	c.sp++
	return r, nil
}

func (c *cg) top() isa.Reg { return regTmpBase + isa.Reg(c.sp-1) }

func (c *cg) pop() { c.sp-- }

func (c *cg) label(prefix string) string {
	c.labelN++
	return fmt.Sprintf("%s%d", prefix, c.labelN)
}

func (c *cg) spillSlot(i int) int32 { return c.spillBase + int32(4*i) }

// ---- statements ----

func (c *cg) genStmts(stmts []stmt) error {
	for _, s := range stmts {
		if err := c.genStmt(s); err != nil {
			return err
		}
		if c.sp != 0 {
			return &Error{Line: c.fn.line, Msg: fmt.Sprintf("internal: temp stack not empty (%d) after statement in %q", c.sp, c.fn.name)}
		}
	}
	return nil
}

func (c *cg) genStmt(s stmt) error {
	switch st := s.(type) {
	case declStmt:
		if st.static || st.init == nil {
			return nil // storage handled at layout time
		}
		if err := c.genExpr(st.init); err != nil {
			return err
		}
		li := c.locals[st.name]
		c.f.Emit(asm.Sw(c.top(), isa.FP, -li.off))
		c.pop()
		return nil

	case assignStmt:
		return c.genAssign(st.lhs, st.rhs)

	case exprStmt:
		if err := c.genExpr(st.e); err != nil {
			return err
		}
		c.pop()
		return nil

	case ifStmt:
		els := c.label("$else")
		end := c.label("$fi")
		if err := c.genExpr(st.cond); err != nil {
			return err
		}
		c.f.Emit(asm.Br(isa.BEQ, c.top(), isa.R0, els))
		c.pop()
		if err := c.genStmts(st.then); err != nil {
			return err
		}
		if len(st.els) > 0 {
			c.f.Emit(asm.Jmp(end))
		}
		c.f.Mark(els)
		if len(st.els) > 0 {
			if err := c.genStmts(st.els); err != nil {
				return err
			}
			c.f.Mark(end)
		}
		return nil

	case whileStmt:
		head := c.label("$while")
		end := c.label("$wend")
		c.breakLbl = append(c.breakLbl, end)
		c.contLbl = append(c.contLbl, head)
		c.f.Mark(head)
		if err := c.genExpr(st.cond); err != nil {
			return err
		}
		c.f.Emit(asm.Br(isa.BEQ, c.top(), isa.R0, end))
		c.pop()
		if err := c.genStmts(st.body); err != nil {
			return err
		}
		c.f.Emit(asm.Jmp(head))
		c.f.Mark(end)
		c.breakLbl = c.breakLbl[:len(c.breakLbl)-1]
		c.contLbl = c.contLbl[:len(c.contLbl)-1]
		return nil

	case forStmt:
		head := c.label("$for")
		cont := c.label("$fcont")
		end := c.label("$fend")
		if st.init != nil {
			if err := c.genStmt(st.init); err != nil {
				return err
			}
		}
		c.breakLbl = append(c.breakLbl, end)
		c.contLbl = append(c.contLbl, cont)
		c.f.Mark(head)
		if st.cond != nil {
			if err := c.genExpr(st.cond); err != nil {
				return err
			}
			c.f.Emit(asm.Br(isa.BEQ, c.top(), isa.R0, end))
			c.pop()
		}
		if err := c.genStmts(st.body); err != nil {
			return err
		}
		c.f.Mark(cont)
		if st.post != nil {
			if err := c.genStmt(st.post); err != nil {
				return err
			}
		}
		c.f.Emit(asm.Jmp(head))
		c.f.Mark(end)
		c.breakLbl = c.breakLbl[:len(c.breakLbl)-1]
		c.contLbl = c.contLbl[:len(c.contLbl)-1]
		return nil

	case returnStmt:
		if st.e != nil {
			if err := c.genExpr(st.e); err != nil {
				return err
			}
			c.f.Emit(asm.I(isa.ADDI, regRV, c.top(), 0))
			c.pop()
		} else {
			c.f.Emit(asm.I(isa.ADDI, regRV, isa.R0, 0))
		}
		c.f.Emit(asm.Jmp("$ret"))
		return nil

	case breakStmt:
		if len(c.breakLbl) == 0 {
			return &Error{Line: st.line, Msg: "break outside loop"}
		}
		c.f.Emit(asm.Jmp(c.breakLbl[len(c.breakLbl)-1]))
		return nil

	case continueStmt:
		if len(c.contLbl) == 0 {
			return &Error{Line: st.line, Msg: "continue outside loop"}
		}
		c.f.Emit(asm.Jmp(c.contLbl[len(c.contLbl)-1]))
		return nil

	default:
		return &Error{Line: c.fn.line, Msg: fmt.Sprintf("internal: unknown statement %T", s)}
	}
}

func (c *cg) genAssign(lhs lvalue, rhs expr) error {
	switch lv := lhs.(type) {
	case varLV:
		if li, ok := c.locals[lv.name]; ok {
			if li.words > 1 {
				return &Error{Line: lv.line, Msg: fmt.Sprintf("cannot assign to array %q", lv.name)}
			}
			if err := c.genExpr(rhs); err != nil {
				return err
			}
			c.f.Emit(asm.Sw(c.top(), isa.FP, -li.off))
			c.pop()
			return nil
		}
		sym, size, err := c.dataSymbol(lv.name, lv.line)
		if err != nil {
			return err
		}
		if size > 1 {
			return &Error{Line: lv.line, Msg: fmt.Sprintf("cannot assign to array %q", lv.name)}
		}
		if err := c.genExpr(rhs); err != nil {
			return err
		}
		c.f.Emit(asm.La(isa.AT, sym, 0))
		c.f.Emit(asm.Sw(c.top(), isa.AT, 0))
		c.pop()
		return nil

	default:
		// Address-producing lvalues: compute the address, then the value.
		if err := c.genLValueAddr(lhs); err != nil {
			return err
		}
		if err := c.genExpr(rhs); err != nil {
			return err
		}
		val := c.top()
		c.pop()
		addr := c.top()
		c.pop()
		c.f.Emit(asm.Sw(val, addr, 0))
		return nil
	}
}

// genLValueAddr pushes the address of an lvalue.
func (c *cg) genLValueAddr(lv lvalue) error {
	switch v := lv.(type) {
	case varLV:
		r, err := c.push()
		if err != nil {
			return err
		}
		if li, ok := c.locals[v.name]; ok {
			c.f.Emit(asm.I(isa.ADDI, r, isa.FP, -li.off))
			return nil
		}
		sym, _, err := c.dataSymbol(v.name, v.line)
		if err != nil {
			return err
		}
		c.f.Emit(asm.La(r, sym, 0))
		return nil
	case indexLV:
		if err := c.genExpr(v.base); err != nil {
			return err
		}
		if err := c.genExpr(v.idx); err != nil {
			return err
		}
		idx := c.top()
		c.pop()
		base := c.top() // result stays in base's slot
		c.f.Emit(asm.I(isa.SLLI, idx, idx, 2))
		c.f.Emit(asm.R(isa.ADD, base, base, idx))
		return nil
	case derefLV:
		return c.genExpr(v.e)
	default:
		return &Error{Line: c.fn.line, Msg: fmt.Sprintf("internal: unknown lvalue %T", lv)}
	}
}

// dataSymbol resolves a non-local name: function static first, then
// global. Returns the assembly symbol and its size in words.
func (c *cg) dataSymbol(name string, line int) (string, int, error) {
	if sym, ok := c.statics[name]; ok {
		for _, g := range c.p.Globals {
			if g.Name == sym {
				return sym, g.SizeWords, nil
			}
		}
		return sym, 1, nil
	}
	if g, ok := c.globals[name]; ok {
		size := g.size
		if size == 0 {
			size = 1
		}
		return g.name, size, nil
	}
	return "", 0, &Error{Line: line, Msg: fmt.Sprintf("undefined variable %q", name)}
}

// ---- expressions ----

func (c *cg) genExpr(e expr) error {
	switch v := e.(type) {
	case numExpr:
		r, err := c.push()
		if err != nil {
			return err
		}
		c.f.Emit(asm.Li(r, v.val))
		return nil

	case varExpr:
		r, err := c.push()
		if err != nil {
			return err
		}
		if li, ok := c.locals[v.name]; ok {
			if li.words > 1 {
				// Array decays to its base address.
				c.f.Emit(asm.I(isa.ADDI, r, isa.FP, -li.off))
			} else {
				c.f.Emit(asm.Lw(r, isa.FP, -li.off))
			}
			return nil
		}
		sym, size, err := c.dataSymbol(v.name, v.line)
		if err != nil {
			return err
		}
		c.f.Emit(asm.La(r, sym, 0))
		if size == 1 {
			c.f.Emit(asm.Lw(r, r, 0))
		}
		return nil

	case indexExpr:
		if err := c.genLValueAddr(indexLV{base: v.base, idx: v.idx}); err != nil {
			return err
		}
		c.f.Emit(asm.Lw(c.top(), c.top(), 0))
		return nil

	case derefExpr:
		if err := c.genExpr(v.e); err != nil {
			return err
		}
		c.f.Emit(asm.Lw(c.top(), c.top(), 0))
		return nil

	case addrExpr:
		return c.genLValueAddr(v.lv)

	case unaryExpr:
		if err := c.genExpr(v.e); err != nil {
			return err
		}
		r := c.top()
		switch v.op {
		case "-":
			c.f.Emit(asm.R(isa.SUB, r, isa.R0, r))
		case "!":
			c.f.Emit(asm.R(isa.SLTU, r, isa.R0, r))
			c.f.Emit(asm.I(isa.XORI, r, r, 1))
		case "~":
			c.f.Emit(asm.R(isa.SUB, r, isa.R0, r))
			c.f.Emit(asm.I(isa.ADDI, r, r, -1))
		default:
			return &Error{Line: c.fn.line, Msg: fmt.Sprintf("internal: unary %q", v.op)}
		}
		return nil

	case binExpr:
		return c.genBinary(v)

	case callExpr:
		return c.genCall(v)

	default:
		return &Error{Line: c.fn.line, Msg: fmt.Sprintf("internal: unknown expression %T", e)}
	}
}

func (c *cg) genBinary(v binExpr) error {
	// Short-circuit forms first.
	switch v.op {
	case "&&":
		skip := c.label("$and")
		if err := c.genExpr(v.l); err != nil {
			return err
		}
		a := c.top()
		c.f.Emit(asm.Br(isa.BEQ, a, isa.R0, skip))
		c.pop()
		if err := c.genExpr(v.r); err != nil {
			return err
		}
		c.f.Emit(asm.R(isa.SLTU, a, isa.R0, a))
		c.f.Mark(skip)
		return nil
	case "||":
		done := c.label("$or")
		if err := c.genExpr(v.l); err != nil {
			return err
		}
		a := c.top()
		c.f.Emit(asm.R(isa.SLTU, a, isa.R0, a))
		c.f.Emit(asm.Br(isa.BNE, a, isa.R0, done))
		c.pop()
		if err := c.genExpr(v.r); err != nil {
			return err
		}
		c.f.Emit(asm.R(isa.SLTU, a, isa.R0, a))
		c.f.Mark(done)
		return nil
	}

	if err := c.genExpr(v.l); err != nil {
		return err
	}
	if err := c.genExpr(v.r); err != nil {
		return err
	}
	r := c.top()
	c.pop()
	l := c.top() // result lands in l's slot

	simple := map[string]isa.Op{
		"+": isa.ADD, "-": isa.SUB, "*": isa.MUL, "/": isa.DIV, "%": isa.REM,
		"&": isa.AND, "|": isa.OR, "^": isa.XOR, "<<": isa.SLL, ">>": isa.SRA,
	}
	if op, ok := simple[v.op]; ok {
		c.f.Emit(asm.R(op, l, l, r))
		return nil
	}
	switch v.op {
	case "<":
		c.f.Emit(asm.R(isa.SLT, l, l, r))
	case ">":
		c.f.Emit(asm.R(isa.SLT, l, r, l))
	case "<=":
		c.f.Emit(asm.R(isa.SLT, l, r, l))
		c.f.Emit(asm.I(isa.XORI, l, l, 1))
	case ">=":
		c.f.Emit(asm.R(isa.SLT, l, l, r))
		c.f.Emit(asm.I(isa.XORI, l, l, 1))
	case "==":
		c.f.Emit(asm.R(isa.XOR, l, l, r))
		c.f.Emit(asm.R(isa.SLTU, l, isa.R0, l))
		c.f.Emit(asm.I(isa.XORI, l, l, 1))
	case "!=":
		c.f.Emit(asm.R(isa.XOR, l, l, r))
		c.f.Emit(asm.R(isa.SLTU, l, isa.R0, l))
	default:
		return &Error{Line: c.fn.line, Msg: fmt.Sprintf("internal: binary %q", v.op)}
	}
	return nil
}

func (c *cg) genCall(v callExpr) error {
	if arity, ok := builtins[v.name]; ok {
		if len(v.args) != arity {
			return &Error{Line: v.line, Msg: fmt.Sprintf("%s expects %d argument(s), got %d", v.name, arity, len(v.args))}
		}
		return c.genBuiltin(v)
	}
	sig, ok := c.sigs[v.name]
	if !ok {
		return &Error{Line: v.line, Msg: fmt.Sprintf("call to undefined function %q", v.name)}
	}
	if len(v.args) != sig.params {
		return &Error{Line: v.line, Msg: fmt.Sprintf("%q expects %d argument(s), got %d", v.name, sig.params, len(v.args))}
	}

	base := c.sp
	for _, a := range v.args {
		if err := c.genExpr(a); err != nil {
			return err
		}
	}
	// Move argument values into the argument registers.
	for i := range v.args {
		c.f.Emit(asm.I(isa.ADDI, regArgBase+isa.Reg(i), regTmpBase+isa.Reg(base+i), 0))
	}
	c.sp = base
	// Caller-save: spill live expression temporaries (implicit writes).
	for i := 0; i < base; i++ {
		c.f.Emit(asm.SwImplicit(regTmpBase+isa.Reg(i), isa.FP, -c.spillSlot(i)))
	}
	c.f.Emit(asm.Call(v.name))
	for i := 0; i < base; i++ {
		c.f.Emit(asm.Lw(regTmpBase+isa.Reg(i), isa.FP, -c.spillSlot(i)))
	}
	r, err := c.push()
	if err != nil {
		return err
	}
	c.f.Emit(asm.I(isa.ADDI, r, regRV, 0))
	return nil
}

func (c *cg) genBuiltin(v callExpr) error {
	// Evaluate arguments onto the temp stack, then move to arg regs.
	base := c.sp
	for _, a := range v.args {
		if err := c.genExpr(a); err != nil {
			return err
		}
	}
	for i := range v.args {
		c.f.Emit(asm.I(isa.ADDI, regArgBase+isa.Reg(i), regTmpBase+isa.Reg(base+i), 0))
	}
	c.sp = base
	var sysno int32
	hasResult := false
	switch v.name {
	case "print":
		sysno = kernel.SysPrint
	case "alloc":
		sysno, hasResult = kernel.SysAlloc, true
	case "free":
		sysno = kernel.SysFree
	case "realloc":
		sysno, hasResult = kernel.SysRealloc, true
	case "cycles":
		sysno, hasResult = kernel.SysCycles, true
	case "bzero":
		sysno = kernel.SysBzero
	}
	c.f.Emit(asm.Sys(sysno))
	r, err := c.push()
	if err != nil {
		return err
	}
	if hasResult {
		c.f.Emit(asm.I(isa.ADDI, r, regRV, 0))
	} else {
		c.f.Emit(asm.I(isa.ADDI, r, isa.R0, 0))
	}
	return nil
}
