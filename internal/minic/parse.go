package minic

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*unit, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	u := &unit{}
	for !p.at(tokEOF, "") {
		if err := p.topLevel(u); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, &Error{Line: t.line, Msg: fmt.Sprintf("expected %q, found %q", want, t.text)}
}

func (p *parser) errHere(format string, args ...any) error {
	return &Error{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

// topLevel parses one global declaration or function definition.
func (p *parser) topLevel(u *unit) error {
	if _, err := p.expect(tokKeyword, "int"); err != nil {
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if p.at(tokPunct, "(") {
		f, err := p.funcRest(name)
		if err != nil {
			return err
		}
		if f != nil { // nil for prototypes, which only forward-declare
			u.funcs = append(u.funcs, *f)
		}
		return nil
	}
	g, err := p.globalRest(name)
	if err != nil {
		return err
	}
	u.globals = append(u.globals, *g)
	return nil
}

// globalRest parses the remainder of `int name ...;`.
func (p *parser) globalRest(name token) (*globalDecl, error) {
	g := &globalDecl{name: name.text, line: name.line}
	if p.accept(tokPunct, "[") {
		n, err := p.expect(tokNum, "")
		if err != nil {
			return nil, err
		}
		if n.val <= 0 {
			return nil, &Error{Line: n.line, Msg: "array size must be positive"}
		}
		g.size = int(n.val)
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "=") {
		vals, err := p.constInit()
		if err != nil {
			return nil, err
		}
		if g.size == 0 && len(vals) != 1 {
			return nil, &Error{Line: name.line, Msg: "scalar initialiser must be a single value"}
		}
		if g.size > 0 && len(vals) > g.size {
			return nil, &Error{Line: name.line, Msg: "too many initialisers"}
		}
		g.init = vals
	}
	_, err := p.expect(tokPunct, ";")
	return g, err
}

// constInit parses a constant initialiser: a number, a negated number,
// or a {list}.
func (p *parser) constInit() ([]int32, error) {
	if p.accept(tokPunct, "{") {
		var vals []int32
		for {
			v, err := p.constVal()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.accept(tokPunct, "}") {
				return vals, nil
			}
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	v, err := p.constVal()
	if err != nil {
		return nil, err
	}
	return []int32{v}, nil
}

func (p *parser) constVal() (int32, error) {
	neg := p.accept(tokPunct, "-")
	n, err := p.expect(tokNum, "")
	if err != nil {
		return 0, err
	}
	if neg {
		return -n.val, nil
	}
	return n.val, nil
}

// funcRest parses the remainder of `int name(...) {...}`.
func (p *parser) funcRest(name token) (*funcDecl, error) {
	f := &funcDecl{name: name.text, line: name.line}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, ")") {
		for {
			if _, err := p.expect(tokKeyword, "int"); err != nil {
				return nil, err
			}
			id, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			f.params = append(f.params, id.text)
			if p.accept(tokPunct, ")") {
				break
			}
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
	}
	if p.accept(tokPunct, ";") {
		return nil, nil // prototype: definitions are collected in a pre-pass
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

// block parses `{ stmt* }`.
func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errHere("unexpected end of input in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	return stmts, nil
}

// blockOrStmt parses either a braced block or a single statement.
func (p *parser) blockOrStmt() ([]stmt, error) {
	if p.at(tokPunct, "{") {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []stmt{s}, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "int" || t.text == "static"):
		return p.declStatement()
	case t.kind == tokKeyword && t.text == "if":
		return p.ifStatement()
	case t.kind == tokKeyword && t.text == "while":
		return p.whileStatement()
	case t.kind == tokKeyword && t.text == "for":
		return p.forStatement()
	case t.kind == tokKeyword && t.text == "return":
		p.next()
		var e expr
		if !p.at(tokPunct, ";") {
			var err error
			if e, err = p.expr(); err != nil {
				return nil, err
			}
		}
		_, err := p.expect(tokPunct, ";")
		return returnStmt{e: e}, err
	case t.kind == tokKeyword && t.text == "break":
		p.next()
		_, err := p.expect(tokPunct, ";")
		return breakStmt{line: t.line}, err
	case t.kind == tokKeyword && t.text == "continue":
		p.next()
		_, err := p.expect(tokPunct, ";")
		return continueStmt{line: t.line}, err
	case t.kind == tokPunct && t.text == ";":
		p.next()
		return nil, nil
	default:
		s, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokPunct, ";")
		return s, err
	}
}

func (p *parser) declStatement() (stmt, error) {
	static := p.accept(tokKeyword, "static")
	if _, err := p.expect(tokKeyword, "int"); err != nil {
		return nil, err
	}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d := declStmt{name: id.text, static: static, line: id.line}
	if p.accept(tokPunct, "[") {
		n, err := p.expect(tokNum, "")
		if err != nil {
			return nil, err
		}
		if n.val <= 0 {
			return nil, &Error{Line: n.line, Msg: "array size must be positive"}
		}
		d.size = int(n.val)
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokPunct, "=") {
		if static {
			vals, err := p.constInit()
			if err != nil {
				return nil, err
			}
			d.sinit = vals
		} else {
			if d.size > 0 {
				return nil, &Error{Line: id.line, Msg: "array initialisers are only supported for globals and statics"}
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
	}
	_, err = p.expect(tokPunct, ";")
	return d, err
}

func (p *parser) ifStatement() (stmt, error) {
	p.next() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.accept(tokKeyword, "else") {
		els, err = p.blockOrStmt()
		if err != nil {
			return nil, err
		}
	}
	return ifStmt{cond: cond, then: then, els: els}, nil
}

func (p *parser) whileStatement() (stmt, error) {
	p.next() // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	return whileStmt{cond: cond, body: body}, nil
}

func (p *parser) forStatement() (stmt, error) {
	p.next() // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var f forStmt
	if !p.at(tokPunct, ";") {
		s, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		f.init = s
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.cond = c
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		s, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		f.post = s
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

// simpleStatement parses an assignment, compound assignment,
// increment/decrement, or expression statement (no trailing semicolon).
//
// Compound forms desugar: `x op= e` becomes `x = x op e` and `x++`
// becomes `x = x + 1`. The lvalue expression is therefore evaluated
// twice; this differs from C only when the lvalue itself has side
// effects (e.g. a function call in a subscript), which the benchmark
// workloads never do.
func (p *parser) simpleStatement() (stmt, error) {
	// Parse an expression; if an assignment operator follows,
	// reinterpret it as an lvalue.
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "=") {
		lv, err := exprToLValue(e, p.cur().line)
		if err != nil {
			return nil, err
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return assignStmt{lhs: lv, rhs: rhs}, nil
	}
	compound := map[string]string{
		"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
		"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
	}
	for tok, op := range compound {
		if p.accept(tokPunct, tok) {
			lv, err := exprToLValue(e, p.cur().line)
			if err != nil {
				return nil, err
			}
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return assignStmt{lhs: lv, rhs: binExpr{op: op, l: e, r: rhs}}, nil
		}
	}
	if p.accept(tokPunct, "++") {
		lv, err := exprToLValue(e, p.cur().line)
		if err != nil {
			return nil, err
		}
		return assignStmt{lhs: lv, rhs: binExpr{op: "+", l: e, r: numExpr{val: 1}}}, nil
	}
	if p.accept(tokPunct, "--") {
		lv, err := exprToLValue(e, p.cur().line)
		if err != nil {
			return nil, err
		}
		return assignStmt{lhs: lv, rhs: binExpr{op: "-", l: e, r: numExpr{val: 1}}}, nil
	}
	return exprStmt{e: e}, nil
}

func exprToLValue(e expr, line int) (lvalue, error) {
	switch v := e.(type) {
	case varExpr:
		return varLV{name: v.name, line: v.line}, nil
	case indexExpr:
		return indexLV{base: v.base, idx: v.idx}, nil
	case derefExpr:
		return derefLV{e: v.e}, nil
	default:
		return nil, &Error{Line: line, Msg: "left side of assignment is not assignable"}
	}
}

// Expression grammar, lowest precedence first:
//
//	or   := and ("||" and)*
//	and  := bitor ("&&" bitor)*
//	bitor:= bitxor ("|" bitxor)*
//	bitxor := bitand ("^" bitand)*
//	bitand := equality ("&" equality)*
//	equality := rel (("=="|"!=") rel)*
//	rel  := shift (("<"|">"|"<="|">=") shift)*
//	shift:= add (("<<"|">>") add)*
//	add  := mul (("+"|"-") mul)*
//	mul  := unary (("*"|"/"|"%") unary)*
//	unary:= ("-"|"!"|"~"|"*"|"&") unary | postfix
//	postfix := primary ("[" expr "]")*
//	primary := num | ident | ident "(" args ")" | "(" expr ")"
func (p *parser) expr() (expr, error) { return p.binary(0) }

var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) (expr, error) {
	if level >= len(precLevels) {
		return p.unary()
	}
	l, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.at(tokPunct, op) {
				p.next()
				r, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				l = binExpr{op: op, l: l, r: r}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~":
			p.next()
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return unaryExpr{op: t.text, e: e}, nil
		case "*":
			p.next()
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			return derefExpr{e: e}, nil
		case "&":
			p.next()
			e, err := p.unary()
			if err != nil {
				return nil, err
			}
			lv, err := exprToLValue(e, t.line)
			if err != nil {
				return nil, &Error{Line: t.line, Msg: "'&' requires an lvalue"}
			}
			return addrExpr{lv: lv}, nil
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPunct, "[") {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		e = indexExpr{base: e, idx: idx}
	}
	return e, nil
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNum:
		p.next()
		return numExpr{val: t.val}, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokPunct, "(") {
			call := callExpr{name: t.text, line: t.line}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.args = append(call.args, a)
					if p.accept(tokPunct, ")") {
						break
					}
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			return call, nil
		}
		return varExpr{name: t.text, line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tokPunct, ")")
		return e, err
	default:
		return nil, &Error{Line: t.line, Msg: fmt.Sprintf("unexpected token %q in expression", t.text)}
	}
}
