// Package minic implements a small C-subset compiler targeting the
// simulated RISC of internal/isa. It plays the role GCC 1.4 plays in the
// paper: it compiles the benchmark programs whose stores the experiment
// traces and the software WMS strategies instrument.
//
// Faithful to the paper's setup ("All programs were compiled ... with
// the -g option. No variables were allocated to registers."), the code
// generator keeps every variable memory-resident: each use loads from
// the frame or the global segment and each assignment stores back, so
// loop induction variables really are hot store targets, as in §8's
// discussion of NativeHardware's expensive sessions.
//
// The language: `int` scalars, arrays, and word pointers; functions with
// up to 8 parameters; globals and function statics with initialisers;
// if/else, while, for, break, continue, return; short-circuit && and ||;
// and the builtins alloc/free/realloc/print/cycles, which map to the
// simulated kernel's services.
package minic

import (
	"fmt"
	"strconv"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokPunct   // operators and punctuation
	tokKeyword // int, static, if, else, while, for, return, break, continue
)

type token struct {
	kind tokKind
	text string
	val  int32 // for tokNum
	line int
}

var keywords = map[string]bool{
	"int": true, "static": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "break": true, "continue": true,
}

// multi-character operators, longest first.
var multiOps = []string{
	"<<=", ">>=",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

// Error is a compile error with position information.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			text := l.src[start:l.pos]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			l.toks = append(l.toks, token{kind: kind, text: text, line: l.line})
		case c >= '0' && c <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	base := 10
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		base = 16
		l.pos += 2
		start = l.pos
	}
	for l.pos < len(l.src) && isNumPart(l.src[l.pos], base) {
		l.pos++
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseInt(text, base, 64)
	if err != nil || v > 0xffffffff {
		return &Error{Line: l.line, Msg: fmt.Sprintf("bad number %q", text)}
	}
	l.toks = append(l.toks, token{kind: tokNum, text: text, val: int32(uint32(v)), line: l.line})
	return nil
}

func (l *lexer) lexPunct() error {
	for _, op := range multiOps {
		if len(l.src)-l.pos >= len(op) && l.src[l.pos:l.pos+len(op)] == op {
			l.toks = append(l.toks, token{kind: tokPunct, text: op, line: l.line})
			l.pos += len(op)
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
		'(', ')', '{', '}', '[', ']', ';', ',':
		l.toks = append(l.toks, token{kind: tokPunct, text: string(c), line: l.line})
		l.pos++
		return nil
	}
	return &Error{Line: l.line, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isNumPart(c byte, base int) bool {
	if c >= '0' && c <= '9' {
		return true
	}
	if base == 16 {
		return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return false
}
