package minic

// The abstract syntax tree. Everything is a 32-bit word, as on the
// target: "pointers" are word values, arrays decay to their base
// address, and subscripting scales by the word size.

type expr interface{ exprNode() }

type numExpr struct {
	val int32
}

type varExpr struct {
	name string
	line int
}

// indexExpr is base[idx]: the word at address(base) + 4*idx.
type indexExpr struct {
	base expr
	idx  expr
}

// derefExpr is *e: the word at address e.
type derefExpr struct {
	e expr
}

// addrExpr is &v or &v[i]: the address of an lvalue.
type addrExpr struct {
	lv lvalue
}

type unaryExpr struct {
	op string // "-", "!", "~"
	e  expr
}

type binExpr struct {
	op   string
	l, r expr
}

type callExpr struct {
	name string
	args []expr
	line int
}

func (numExpr) exprNode()   {}
func (varExpr) exprNode()   {}
func (indexExpr) exprNode() {}
func (derefExpr) exprNode() {}
func (addrExpr) exprNode()  {}
func (unaryExpr) exprNode() {}
func (binExpr) exprNode()   {}
func (callExpr) exprNode()  {}

// lvalue is an assignable location.
type lvalue interface{ lvalueNode() }

type varLV struct {
	name string
	line int
}

type indexLV struct {
	base expr
	idx  expr
}

type derefLV struct {
	e expr
}

func (varLV) lvalueNode()   {}
func (indexLV) lvalueNode() {}
func (derefLV) lvalueNode() {}

type stmt interface{ stmtNode() }

type declStmt struct {
	name   string
	size   int  // array words; 0 for scalar
	static bool // function static
	init   expr // scalar initialiser or nil
	sinit  []int32
	line   int
}

type assignStmt struct {
	lhs lvalue
	rhs expr
}

type exprStmt struct {
	e expr
}

type ifStmt struct {
	cond      expr
	then, els []stmt
}

type whileStmt struct {
	cond expr
	body []stmt
}

type forStmt struct {
	init stmt // nil or assignStmt/exprStmt
	cond expr // nil means true
	post stmt
	body []stmt
}

type returnStmt struct {
	e expr // nil means return 0
}

type breakStmt struct{ line int }

type continueStmt struct{ line int }

func (declStmt) stmtNode()     {}
func (assignStmt) stmtNode()   {}
func (exprStmt) stmtNode()     {}
func (ifStmt) stmtNode()       {}
func (whileStmt) stmtNode()    {}
func (forStmt) stmtNode()      {}
func (returnStmt) stmtNode()   {}
func (breakStmt) stmtNode()    {}
func (continueStmt) stmtNode() {}

type funcDecl struct {
	name   string
	params []string
	body   []stmt
	line   int
}

type globalDecl struct {
	name string
	size int // words; 0 for scalar
	init []int32
	line int
}

type unit struct {
	globals []globalDecl
	funcs   []funcDecl
}
