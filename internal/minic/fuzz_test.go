package minic

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"edb/internal/arch"
	"edb/internal/kernel"
)

// Differential testing: generate random expressions, compile and run
// them on the simulated machine, and compare against a Go-evaluated
// oracle with identical int32 wraparound semantics. The generator
// itself lives in gen.go (exported) because the CodePatch optimizer's
// differential harness reuses it.

func TestFuzzExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	g := &ExprGen{Rng: rng, Vars: []string{"a", "b", "c"}}
	const cases = 120
	for i := 0; i < cases; i++ {
		env := map[string]int32{
			"a": int32(rng.Intn(4001) - 2000),
			"b": int32(rng.Uint32()),
			"c": int32(rng.Intn(100)),
		}
		// Several expressions per program amortises the compile cost.
		var exprs []GenExpr
		var b strings.Builder
		fmt.Fprintf(&b, "int main() {\n")
		fmt.Fprintf(&b, "int a = %s;\n", CNum(env["a"]))
		fmt.Fprintf(&b, "int b = %s;\n", CNum(env["b"]))
		fmt.Fprintf(&b, "int c = %s;\n", CNum(env["c"]))
		for j := 0; j < 4; j++ {
			e := g.Gen(2 + rng.Intn(2))
			exprs = append(exprs, e)
			fmt.Fprintf(&b, "print(%s);\n", e.Src)
		}
		fmt.Fprintf(&b, "return 0;\n}\n")
		src := b.String()

		img, err := CompileToImage(src)
		if err != nil {
			// Depth-limited generation should always compile.
			t.Fatalf("case %d does not compile: %v\n%s", i, err, src)
		}
		m, err := kernel.NewMachine(img, arch.PageSize4K)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatalf("case %d failed to run: %v\n%s", i, err, src)
		}
		got := strings.Fields(m.Out.String())
		if len(got) != len(exprs) {
			t.Fatalf("case %d printed %d values, want %d\n%s", i, len(got), len(exprs), src)
		}
		for j, e := range exprs {
			want := e.Eval(env)
			if got[j] != strconv.Itoa(int(want)) {
				t.Fatalf("case %d expr %d:\n  %s\n  got %s, want %d (env %v)",
					i, j, e.Src, got[j], want, env)
			}
		}
	}
}

// TestFuzzStatements runs randomised straight-line assignment programs
// against a Go mirror.
func TestFuzzStatements(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := &ExprGen{Rng: rng, Vars: []string{"a", "b", "c"}}
	for i := 0; i < 40; i++ {
		env := map[string]int32{"a": 1, "b": 2, "c": 3}
		var b strings.Builder
		b.WriteString("int main() {\nint a = 1;\nint b = 2;\nint c = 3;\n")
		for j := 0; j < 12; j++ {
			target := g.Vars[rng.Intn(len(g.Vars))]
			e := g.Gen(2)
			cond := g.Gen(1)
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "if (%s) { %s = %s; }\n", cond.Src, target, e.Src)
				if cond.Eval(env) != 0 {
					env[target] = e.Eval(env)
				}
			} else {
				fmt.Fprintf(&b, "%s = %s;\n", target, e.Src)
				env[target] = e.Eval(env)
			}
		}
		b.WriteString("print(a); print(b); print(c);\nreturn 0;\n}\n")

		img, err := CompileToImage(b.String())
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, b.String())
		}
		m, _ := kernel.NewMachine(img, arch.PageSize4K)
		if err := m.Run(10_000_000); err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, b.String())
		}
		got := strings.Fields(m.Out.String())
		want := []string{
			strconv.Itoa(int(env["a"])), strconv.Itoa(int(env["b"])), strconv.Itoa(int(env["c"])),
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("case %d: vars = %v, want %v\n%s", i, got, want, b.String())
			}
		}
	}
}

// TestGenProgramCompilesAndRuns: every seed's generated whole program
// must compile and terminate within the fuel budget, and generation
// must be deterministic per seed.
func TestGenProgramCompilesAndRuns(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := GenProgram(rand.New(rand.NewSource(seed)))
		if again := GenProgram(rand.New(rand.NewSource(seed))); again != src {
			t.Fatalf("seed %d is not deterministic", seed)
		}
		img, err := CompileToImage(src)
		if err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
		m, err := kernel.NewMachine(img, arch.PageSize4K)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatalf("seed %d failed to run: %v\n%s", seed, err, src)
		}
		if len(strings.Fields(m.Out.String())) != 4 {
			t.Fatalf("seed %d printed %q, want 4 values", seed, m.Out.String())
		}
	}
}
