package minic

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"edb/internal/arch"
	"edb/internal/kernel"
)

// Differential testing: generate random expressions, compile and run
// them on the simulated machine, and compare against a Go-evaluated
// oracle with identical int32 wraparound semantics.

type genExpr struct {
	src  string
	eval func(env map[string]int32) int32
}

type exprGen struct {
	rng  *rand.Rand
	vars []string
}

func (g *exprGen) lit() genExpr {
	v := int32(g.rng.Intn(2001) - 1000)
	if g.rng.Intn(8) == 0 {
		v = int32(g.rng.Uint32()) // occasionally a full-range constant
	}
	src := strconv.Itoa(int(v))
	if v < 0 {
		src = "(0 - " + strconv.Itoa(-int(v)) + ")"
	}
	return genExpr{src: src, eval: func(map[string]int32) int32 { return v }}
}

func (g *exprGen) variable() genExpr {
	name := g.vars[g.rng.Intn(len(g.vars))]
	return genExpr{src: name, eval: func(env map[string]int32) int32 { return env[name] }}
}

// gen builds a random expression of bounded depth. Division and
// modulus use strictly positive constant denominators so neither the
// oracle nor the debuggee can fault.
func (g *exprGen) gen(depth int) genExpr {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return g.lit()
		}
		return g.variable()
	}
	switch g.rng.Intn(14) {
	case 0, 1:
		return g.lit()
	case 2:
		return g.variable()
	case 3: // unary minus
		e := g.gen(depth - 1)
		return genExpr{
			src:  "(-" + e.src + ")",
			eval: func(env map[string]int32) int32 { return -e.eval(env) },
		}
	case 4: // logical not
		e := g.gen(depth - 1)
		return genExpr{
			src: "(!" + e.src + ")",
			eval: func(env map[string]int32) int32 {
				if e.eval(env) == 0 {
					return 1
				}
				return 0
			},
		}
	case 5: // bitwise not
		e := g.gen(depth - 1)
		return genExpr{
			src:  "(~" + e.src + ")",
			eval: func(env map[string]int32) int32 { return ^e.eval(env) },
		}
	case 6: // division by positive constant
		e := g.gen(depth - 1)
		d := int32(g.rng.Intn(97) + 1)
		op := "/"
		evalF := func(env map[string]int32) int32 { return e.eval(env) / d }
		if g.rng.Intn(2) == 0 {
			op = "%"
			evalF = func(env map[string]int32) int32 { return e.eval(env) % d }
		}
		return genExpr{
			src:  fmt.Sprintf("(%s %s %d)", e.src, op, d),
			eval: evalF,
		}
	case 7: // shift by constant
		e := g.gen(depth - 1)
		sh := g.rng.Intn(31)
		if g.rng.Intn(2) == 0 {
			return genExpr{
				src:  fmt.Sprintf("(%s << %d)", e.src, sh),
				eval: func(env map[string]int32) int32 { return e.eval(env) << sh },
			}
		}
		return genExpr{
			src:  fmt.Sprintf("(%s >> %d)", e.src, sh),
			eval: func(env map[string]int32) int32 { return e.eval(env) >> sh },
		}
	case 8: // short-circuit forms
		l, r := g.gen(depth-1), g.gen(depth-1)
		if g.rng.Intn(2) == 0 {
			return genExpr{
				src: "(" + l.src + " && " + r.src + ")",
				eval: func(env map[string]int32) int32 {
					if l.eval(env) == 0 {
						return 0
					}
					if r.eval(env) != 0 {
						return 1
					}
					return 0
				},
			}
		}
		return genExpr{
			src: "(" + l.src + " || " + r.src + ")",
			eval: func(env map[string]int32) int32 {
				if l.eval(env) != 0 {
					return 1
				}
				if r.eval(env) != 0 {
					return 1
				}
				return 0
			},
		}
	default: // binary arithmetic / comparison / bitwise
		l, r := g.gen(depth-1), g.gen(depth-1)
		type binOp struct {
			op   string
			eval func(a, b int32) int32
		}
		b2i := func(b bool) int32 {
			if b {
				return 1
			}
			return 0
		}
		ops := []binOp{
			{"+", func(a, b int32) int32 { return a + b }},
			{"-", func(a, b int32) int32 { return a - b }},
			{"*", func(a, b int32) int32 { return a * b }},
			{"&", func(a, b int32) int32 { return a & b }},
			{"|", func(a, b int32) int32 { return a | b }},
			{"^", func(a, b int32) int32 { return a ^ b }},
			{"<", func(a, b int32) int32 { return b2i(a < b) }},
			{">", func(a, b int32) int32 { return b2i(a > b) }},
			{"<=", func(a, b int32) int32 { return b2i(a <= b) }},
			{">=", func(a, b int32) int32 { return b2i(a >= b) }},
			{"==", func(a, b int32) int32 { return b2i(a == b) }},
			{"!=", func(a, b int32) int32 { return b2i(a != b) }},
		}
		op := ops[g.rng.Intn(len(ops))]
		return genExpr{
			src:  "(" + l.src + " " + op.op + " " + r.src + ")",
			eval: func(env map[string]int32) int32 { return op.eval(l.eval(env), r.eval(env)) },
		}
	}
}

func TestFuzzExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	g := &exprGen{rng: rng, vars: []string{"a", "b", "c"}}
	const cases = 120
	for i := 0; i < cases; i++ {
		env := map[string]int32{
			"a": int32(rng.Intn(4001) - 2000),
			"b": int32(rng.Uint32()),
			"c": int32(rng.Intn(100)),
		}
		// Several expressions per program amortises the compile cost.
		var exprs []genExpr
		var b strings.Builder
		fmt.Fprintf(&b, "int main() {\n")
		fmt.Fprintf(&b, "int a = %s;\n", cNum(env["a"]))
		fmt.Fprintf(&b, "int b = %s;\n", cNum(env["b"]))
		fmt.Fprintf(&b, "int c = %s;\n", cNum(env["c"]))
		for j := 0; j < 4; j++ {
			e := g.gen(2 + rng.Intn(2))
			exprs = append(exprs, e)
			fmt.Fprintf(&b, "print(%s);\n", e.src)
		}
		fmt.Fprintf(&b, "return 0;\n}\n")
		src := b.String()

		img, err := CompileToImage(src)
		if err != nil {
			// Depth-limited generation should always compile.
			t.Fatalf("case %d does not compile: %v\n%s", i, err, src)
		}
		m, err := kernel.NewMachine(img, arch.PageSize4K)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatalf("case %d failed to run: %v\n%s", i, err, src)
		}
		got := strings.Fields(m.Out.String())
		if len(got) != len(exprs) {
			t.Fatalf("case %d printed %d values, want %d\n%s", i, len(got), len(exprs), src)
		}
		for j, e := range exprs {
			want := e.eval(env)
			if got[j] != strconv.Itoa(int(want)) {
				t.Fatalf("case %d expr %d:\n  %s\n  got %s, want %d (env %v)",
					i, j, e.src, got[j], want, env)
			}
		}
	}
}

// cNum renders an int32 as a mini-C constant (no unary int-min issue).
func cNum(v int32) string {
	if v >= 0 {
		return strconv.Itoa(int(v))
	}
	return fmt.Sprintf("(0 - %d)", uint32(-int64(v)))
}

// TestFuzzStatements runs randomised straight-line assignment programs
// against a Go mirror.
func TestFuzzStatements(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := &exprGen{rng: rng, vars: []string{"a", "b", "c"}}
	for i := 0; i < 40; i++ {
		env := map[string]int32{"a": 1, "b": 2, "c": 3}
		var b strings.Builder
		b.WriteString("int main() {\nint a = 1;\nint b = 2;\nint c = 3;\n")
		for j := 0; j < 12; j++ {
			target := g.vars[rng.Intn(len(g.vars))]
			e := g.gen(2)
			cond := g.gen(1)
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&b, "if (%s) { %s = %s; }\n", cond.src, target, e.src)
				if cond.eval(env) != 0 {
					env[target] = e.eval(env)
				}
			} else {
				fmt.Fprintf(&b, "%s = %s;\n", target, e.src)
				env[target] = e.eval(env)
			}
		}
		b.WriteString("print(a); print(b); print(c);\nreturn 0;\n}\n")

		img, err := CompileToImage(b.String())
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, b.String())
		}
		m, _ := kernel.NewMachine(img, arch.PageSize4K)
		if err := m.Run(10_000_000); err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, b.String())
		}
		got := strings.Fields(m.Out.String())
		want := []string{
			strconv.Itoa(int(env["a"])), strconv.Itoa(int(env["b"])), strconv.Itoa(int(env["c"])),
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("case %d: vars = %v, want %v\n%s", i, got, want, b.String())
			}
		}
	}
}
