package minic

import (
	"strings"
	"testing"

	"edb/internal/arch"
	"edb/internal/kernel"
)

// runProg compiles and runs src, returning the print output lines and
// the exit code.
func runProg(t *testing.T, src string) ([]string, int32) {
	t.Helper()
	img, err := CompileToImage(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := strings.Fields(m.Out.String())
	return out, m.CPU.ExitCode
}

func wantOut(t *testing.T, src string, want ...string) {
	t.Helper()
	got, _ := runProg(t, src)
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestReturnValue(t *testing.T) {
	_, code := runProg(t, `int main() { return 42; }`)
	if code != 42 {
		t.Errorf("exit = %d", code)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	_, code := runProg(t, `int main() { print(1); }`)
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
}

func TestArithmetic(t *testing.T) {
	wantOut(t, `int main() {
		print(2+3*4);      // 14
		print((2+3)*4);    // 20
		print(7/2);        // 3
		print(7%3);        // 1
		print(-7/2);       // -3
		print(10-3-2);     // 5 (left assoc)
		print(1 << 4);     // 16
		print(-16 >> 2);   // -4 (arithmetic)
		print(6 & 3);      // 2
		print(6 | 3);      // 7
		print(6 ^ 3);      // 5
		print(~0);         // -1
		return 0;
	}`, "14", "20", "3", "1", "-3", "5", "16", "-4", "2", "7", "5", "-1")
}

func TestComparisons(t *testing.T) {
	wantOut(t, `int main() {
		print(1 < 2); print(2 < 1); print(2 <= 2);
		print(3 > 2); print(2 > 3); print(2 >= 3);
		print(5 == 5); print(5 == 6); print(5 != 6);
		print(-1 < 1);
		return 0;
	}`, "1", "0", "1", "1", "0", "0", "1", "0", "1", "1")
}

func TestLogicalOps(t *testing.T) {
	wantOut(t, `int main() {
		print(1 && 2);  // 1
		print(1 && 0);  // 0
		print(0 && 1);  // 0
		print(0 || 0);  // 0
		print(0 || 7);  // 1
		print(3 || 0);  // 1
		print(!0); print(!5);
		return 0;
	}`, "1", "0", "0", "0", "1", "1", "1", "0")
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The right side of && must not execute when the left is false.
	wantOut(t, `
	int g = 0;
	int bump() { g = g + 1; return 1; }
	int main() {
		int x;
		x = 0 && bump();
		print(g);            // 0 - bump not called
		x = 1 && bump();
		print(g);            // 1
		x = 1 || bump();
		print(g);            // 1 - bump not called
		x = 0 || bump();
		print(g);            // 2
		return 0;
	}`, "0", "1", "1", "2")
}

func TestLocalsAndAssignment(t *testing.T) {
	wantOut(t, `int main() {
		int a = 5;
		int b;
		b = a * 2;
		a = a + b;
		print(a); print(b);
		return 0;
	}`, "15", "10")
}

func TestGlobals(t *testing.T) {
	wantOut(t, `
	int counter = 100;
	int table[4] = {10, 20, 30, 40};
	int main() {
		counter = counter + 1;
		print(counter);
		print(table[0] + table[3]);
		table[2] = 99;
		print(table[2]);
		return 0;
	}`, "101", "50", "99")
}

func TestLocalArrays(t *testing.T) {
	wantOut(t, `int main() {
		int a[5];
		int i;
		for (i = 0; i < 5; i = i + 1) { a[i] = i * i; }
		int s = 0;
		for (i = 0; i < 5; i = i + 1) { s = s + a[i]; }
		print(s);
		return 0;
	}`, "30")
}

func TestWhileLoop(t *testing.T) {
	wantOut(t, `int main() {
		int n = 10;
		int f = 1;
		while (n > 1) { f = f * n; n = n - 1; }
		print(f);
		return 0;
	}`, "3628800")
}

func TestForBreakContinue(t *testing.T) {
	wantOut(t, `int main() {
		int i; int s = 0;
		for (i = 0; i < 100; i = i + 1) {
			if (i % 2 == 0) { continue; }
			if (i > 10) { break; }
			s = s + i;
		}
		print(s); // 1+3+5+7+9 = 25
		return 0;
	}`, "25")
}

func TestNestedLoops(t *testing.T) {
	wantOut(t, `int main() {
		int i; int j; int c = 0;
		for (i = 0; i < 4; i = i + 1) {
			for (j = 0; j < 4; j = j + 1) {
				if (j == 2) { break; }
				c = c + 1;
			}
		}
		print(c); // 4 * 2
		return 0;
	}`, "8")
}

func TestIfElseChain(t *testing.T) {
	wantOut(t, `
	int classify(int x) {
		if (x < 0) { return -1; }
		else if (x == 0) { return 0; }
		else { return 1; }
	}
	int main() {
		print(classify(-5)); print(classify(0)); print(classify(7));
		return 0;
	}`, "-1", "0", "1")
}

func TestFunctionCalls(t *testing.T) {
	wantOut(t, `
	int add3(int a, int b, int c) { return a + b + c; }
	int twice(int x) { return x * 2; }
	int main() {
		print(add3(1, 2, 3));
		print(twice(add3(10, 20, 30)));
		print(add3(twice(1), twice(2), twice(3)));
		return 0;
	}`, "6", "120", "12")
}

func TestRecursion(t *testing.T) {
	wantOut(t, `
	int fib(int n) {
		if (n < 2) { return n; }
		return fib(n-1) + fib(n-2);
	}
	int main() { print(fib(15)); return 0; }`, "610")
}

func TestMutualRecursion(t *testing.T) {
	wantOut(t, `
	int isOdd(int n);
	int isEven(int n) { if (n == 0) { return 1; } return isOdd(n - 1); }
	int isOdd(int n) { if (n == 0) { return 0; } return isEven(n - 1); }
	int main() { print(isEven(10)); print(isOdd(10)); return 0; }`, "1", "0")
}

func TestTempsSurviveCalls(t *testing.T) {
	// A call in the middle of an expression must not clobber the
	// partially evaluated expression (caller-save spilling).
	wantOut(t, `
	int id(int x) { return x; }
	int main() {
		print(1000 + id(1) + 100 * id(2) + id(3));
		return 0;
	}`, "1204")
}

func TestStatics(t *testing.T) {
	wantOut(t, `
	int tick() {
		static int n = 0;
		n = n + 1;
		return n;
	}
	int main() {
		print(tick()); print(tick()); print(tick());
		return 0;
	}`, "1", "2", "3")
}

func TestStaticArray(t *testing.T) {
	wantOut(t, `
	int memo(int i) {
		static int cache[8] = {1, 1, 2, 3, 5, 8, 13, 21};
		return cache[i];
	}
	int main() { print(memo(6)); return 0; }`, "13")
}

func TestHeapBuiltins(t *testing.T) {
	wantOut(t, `int main() {
		int p = alloc(16);
		p[0] = 11; p[1] = 22; p[2] = 33; p[3] = 44;
		print(p[0] + p[3]);
		int q = realloc(p, 32);
		print(q[1]);       // contents preserved in place
		q[7] = 77;
		print(q[7]);
		free(q);
		return 0;
	}`, "55", "22", "77")
}

func TestPointers(t *testing.T) {
	wantOut(t, `
	int setVia(int p, int v) { *p = v; return 0; }
	int main() {
		int x = 1;
		int px = &x;
		*px = 42;
		print(x);
		setVia(&x, 7);
		print(x);
		int a[3];
		a[0] = 5; a[1] = 6; a[2] = 7;
		int pa = a;        // array decays
		print(*pa); print(pa[2]);
		return 0;
	}`, "42", "7", "5", "7")
}

func TestLinkedListOnHeap(t *testing.T) {
	wantOut(t, `
	// node layout: [0]=value, [1]=next
	int push(int head, int v) {
		int n = alloc(8);
		n[0] = v;
		n[1] = head;
		return n;
	}
	int sum(int head) {
		int s = 0;
		while (head != 0) { s = s + head[0]; head = head[1]; }
		return s;
	}
	int main() {
		int list = 0;
		int i;
		for (i = 1; i <= 10; i = i + 1) { list = push(list, i); }
		print(sum(list));
		return 0;
	}`, "55")
}

func TestCyclesBuiltin(t *testing.T) {
	out, _ := runProg(t, `int main() {
		int c0 = cycles();
		int i; int s = 0;
		for (i = 0; i < 100; i = i + 1) { s = s + i; }
		int c1 = cycles();
		print(c1 > c0);
		return 0;
	}`)
	if len(out) != 1 || out[0] != "1" {
		t.Errorf("cycles monotonicity: %v", out)
	}
}

func TestHexLiteralsAndComments(t *testing.T) {
	wantOut(t, `
	/* block comment
	   over lines */
	int main() {
		// line comment
		print(0x10 + 0xff);
		return 0;
	}`, "271")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no main", `int f() { return 0; }`},
		{"undefined var", `int main() { return x; }`},
		{"undefined func", `int main() { return nope(); }`},
		{"arity", `int f(int a) { return a; } int main() { return f(1,2); }`},
		{"builtin arity", `int main() { print(1,2); return 0; }`},
		{"dup local", `int main() { int x; int x; return 0; }`},
		{"dup global", `int g; int g; int main() { return 0; }`},
		{"dup func", `int f() { return 0; } int f() { return 0; } int main() { return 0; }`},
		{"assign to array", `int main() { int a[3]; a = 5; return 0; }`},
		{"assign to literal", `int main() { 5 = 6; return 0; }`},
		{"break outside loop", `int main() { break; return 0; }`},
		{"continue outside loop", `int main() { continue; return 0; }`},
		{"bad token", "int main() { return 1 @ 2; }"},
		{"unterminated block", `int main() { return 0;`},
		{"redefine builtin", `int print(int x) { return x; } int main() { return 0; }`},
		{"too many params", `int f(int a,int b,int c,int d,int e,int f2,int g,int h,int i2) { return 0; } int main() { return 0; }`},
		{"negative array", `int main() { int a[0]; return 0; }`},
		{"local array init", `int main() { int a[2] = 5; return 0; }`},
		{"amp of literal", `int main() { return &5; }`},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: expected compile error", c.name)
		}
	}
}

func TestDebugInfo(t *testing.T) {
	img, err := CompileToImage(`
	int g;
	int f(int a, int b) {
		int x;
		int arr[4];
		static int s;
		x = a + b;
		arr[0] = x;
		s = x;
		return x;
	}
	int main() { return f(1, 2); }`)
	if err != nil {
		t.Fatal(err)
	}
	fi := img.Funcs[img.FuncBySym["f"]]
	if len(fi.Locals) != 4 { // a, b, x, arr
		t.Fatalf("locals = %+v", fi.Locals)
	}
	names := map[string]int{}
	for _, l := range fi.Locals {
		names[l.Name] = l.SizeWords
	}
	if names["a"] != 1 || names["b"] != 1 || names["x"] != 1 || names["arr"] != 4 {
		t.Errorf("local sizes = %v", names)
	}
	if len(fi.Statics) != 1 || fi.Statics[0] != "f$s" {
		t.Errorf("statics = %v", fi.Statics)
	}
	if _, ok := img.Data["f$s"]; !ok {
		t.Error("static storage missing")
	}
	if _, ok := img.Data["g"]; !ok {
		t.Error("global storage missing")
	}
	// Locals must not overlap.
	type span struct{ lo, hi int32 }
	var spans []span
	for _, l := range fi.Locals {
		spans = append(spans, span{l.Offset - int32(4*l.SizeWords) + 4, l.Offset + 4})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("locals overlap: %+v %+v (%+v)", a, b, fi.Locals)
			}
		}
	}
}

func TestDeterministicExecution(t *testing.T) {
	src := `
	int rngState = 12345;
	int rng() {
		rngState = rngState * 1103515245 + 12345;
		return (rngState >> 16) & 0x7fff;
	}
	int main() {
		int i; int s = 0;
		for (i = 0; i < 1000; i = i + 1) { s = s ^ rng(); }
		print(s);
		return 0;
	}`
	out1, _ := runProg(t, src)
	out2, _ := runProg(t, src)
	if out1[0] != out2[0] {
		t.Errorf("nondeterministic: %v vs %v", out1, out2)
	}
}

func TestImplicitStoresMarked(t *testing.T) {
	img, err := CompileToImage(`
	int id(int x) { return x; }
	int main() {
		int a = 1;
		return a + id(2) + id(3);
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.ImplicitStores) == 0 {
		t.Error("prologue/spill stores should be marked implicit")
	}
	stores, total := img.CountStores()
	if stores == 0 || total == 0 || stores >= total {
		t.Errorf("stores=%d total=%d", stores, total)
	}
	if len(img.ImplicitStores) >= stores {
		t.Errorf("all %d stores implicit out of %d?", len(img.ImplicitStores), stores)
	}
}

func TestCompoundAssignment(t *testing.T) {
	wantOut(t, `int main() {
		int a = 10;
		a += 5;  print(a);   // 15
		a -= 3;  print(a);   // 12
		a *= 4;  print(a);   // 48
		a /= 5;  print(a);   // 9
		a %= 4;  print(a);   // 1
		a |= 6;  print(a);   // 7
		a &= 5;  print(a);   // 5
		a ^= 3;  print(a);   // 6
		a <<= 2; print(a);   // 24
		a >>= 1; print(a);   // 12
		return 0;
	}`, "15", "12", "48", "9", "1", "7", "5", "6", "24", "12")
}

func TestIncrementDecrement(t *testing.T) {
	wantOut(t, `
	int g = 0;
	int arr[3];
	int main() {
		int i;
		for (i = 0; i < 6; i++) { g++; }
		print(g);
		g--;
		print(g);
		arr[1]++;
		arr[1] += 2;
		print(arr[1]);
		return 0;
	}`, "6", "5", "3")
}

func TestCompoundOnIndexAndDeref(t *testing.T) {
	wantOut(t, `int main() {
		int p = alloc(16);
		p[2] = 10;
		p[2] += 5;
		print(p[2]);
		*p = 3;
		*p *= 7;
		print(*p);
		free(p);
		return 0;
	}`, "15", "21")
}

func TestCompoundErrors(t *testing.T) {
	if _, err := Compile(`int main() { 5 += 1; return 0; }`); err == nil {
		t.Error("compound assign to literal should fail")
	}
	if _, err := Compile(`int main() { int a; a ++ 1; return 0; }`); err == nil {
		t.Error("a ++ 1 should be a syntax error")
	}
}
