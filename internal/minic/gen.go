package minic

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// This file is the shared random-program generator behind the compiler's
// own differential fuzz tests (fuzz_test.go) and the CodePatch
// optimizer's differential harness (internal/core/codepatch): both need
// arbitrary-but-valid mini-C sources, so the generator lives in the
// package proper rather than being duplicated across _test files.

// GenExpr is one generated mini-C expression plus a Go oracle with
// identical int32 wraparound semantics.
type GenExpr struct {
	Src  string
	Eval func(env map[string]int32) int32
}

// ExprGen generates random expressions over a fixed variable set.
type ExprGen struct {
	Rng  *rand.Rand
	Vars []string
}

// Lit generates a literal (occasionally full-range).
func (g *ExprGen) Lit() GenExpr {
	v := int32(g.Rng.Intn(2001) - 1000)
	if g.Rng.Intn(8) == 0 {
		v = int32(g.Rng.Uint32()) // occasionally a full-range constant
	}
	src := strconv.Itoa(int(v))
	if v < 0 {
		src = "(0 - " + strconv.Itoa(-int(v)) + ")"
	}
	return GenExpr{Src: src, Eval: func(map[string]int32) int32 { return v }}
}

// Variable generates a reference to one of the generator's variables.
func (g *ExprGen) Variable() GenExpr {
	name := g.Vars[g.Rng.Intn(len(g.Vars))]
	return GenExpr{Src: name, Eval: func(env map[string]int32) int32 { return env[name] }}
}

// Gen builds a random expression of bounded depth. Division and
// modulus use strictly positive constant denominators so neither the
// oracle nor the debuggee can fault.
func (g *ExprGen) Gen(depth int) GenExpr {
	if depth <= 0 {
		if g.Rng.Intn(2) == 0 {
			return g.Lit()
		}
		return g.Variable()
	}
	switch g.Rng.Intn(14) {
	case 0, 1:
		return g.Lit()
	case 2:
		return g.Variable()
	case 3: // unary minus
		e := g.Gen(depth - 1)
		return GenExpr{
			Src:  "(-" + e.Src + ")",
			Eval: func(env map[string]int32) int32 { return -e.Eval(env) },
		}
	case 4: // logical not
		e := g.Gen(depth - 1)
		return GenExpr{
			Src: "(!" + e.Src + ")",
			Eval: func(env map[string]int32) int32 {
				if e.Eval(env) == 0 {
					return 1
				}
				return 0
			},
		}
	case 5: // bitwise not
		e := g.Gen(depth - 1)
		return GenExpr{
			Src:  "(~" + e.Src + ")",
			Eval: func(env map[string]int32) int32 { return ^e.Eval(env) },
		}
	case 6: // division by positive constant
		e := g.Gen(depth - 1)
		d := int32(g.Rng.Intn(97) + 1)
		op := "/"
		evalF := func(env map[string]int32) int32 { return e.Eval(env) / d }
		if g.Rng.Intn(2) == 0 {
			op = "%"
			evalF = func(env map[string]int32) int32 { return e.Eval(env) % d }
		}
		return GenExpr{
			Src:  fmt.Sprintf("(%s %s %d)", e.Src, op, d),
			Eval: evalF,
		}
	case 7: // shift by constant
		e := g.Gen(depth - 1)
		sh := g.Rng.Intn(31)
		if g.Rng.Intn(2) == 0 {
			return GenExpr{
				Src:  fmt.Sprintf("(%s << %d)", e.Src, sh),
				Eval: func(env map[string]int32) int32 { return e.Eval(env) << sh },
			}
		}
		return GenExpr{
			Src:  fmt.Sprintf("(%s >> %d)", e.Src, sh),
			Eval: func(env map[string]int32) int32 { return e.Eval(env) >> sh },
		}
	case 8: // short-circuit forms
		l, r := g.Gen(depth-1), g.Gen(depth-1)
		if g.Rng.Intn(2) == 0 {
			return GenExpr{
				Src: "(" + l.Src + " && " + r.Src + ")",
				Eval: func(env map[string]int32) int32 {
					if l.Eval(env) == 0 {
						return 0
					}
					if r.Eval(env) != 0 {
						return 1
					}
					return 0
				},
			}
		}
		return GenExpr{
			Src: "(" + l.Src + " || " + r.Src + ")",
			Eval: func(env map[string]int32) int32 {
				if l.Eval(env) != 0 {
					return 1
				}
				if r.Eval(env) != 0 {
					return 1
				}
				return 0
			},
		}
	default: // binary arithmetic / comparison / bitwise
		l, r := g.Gen(depth-1), g.Gen(depth-1)
		type binOp struct {
			op   string
			eval func(a, b int32) int32
		}
		b2i := func(b bool) int32 {
			if b {
				return 1
			}
			return 0
		}
		ops := []binOp{
			{"+", func(a, b int32) int32 { return a + b }},
			{"-", func(a, b int32) int32 { return a - b }},
			{"*", func(a, b int32) int32 { return a * b }},
			{"&", func(a, b int32) int32 { return a & b }},
			{"|", func(a, b int32) int32 { return a | b }},
			{"^", func(a, b int32) int32 { return a ^ b }},
			{"<", func(a, b int32) int32 { return b2i(a < b) }},
			{">", func(a, b int32) int32 { return b2i(a > b) }},
			{"<=", func(a, b int32) int32 { return b2i(a <= b) }},
			{">=", func(a, b int32) int32 { return b2i(a >= b) }},
			{"==", func(a, b int32) int32 { return b2i(a == b) }},
			{"!=", func(a, b int32) int32 { return b2i(a != b) }},
		}
		op := ops[g.Rng.Intn(len(ops))]
		return GenExpr{
			Src:  "(" + l.Src + " " + op.op + " " + r.Src + ")",
			Eval: func(env map[string]int32) int32 { return op.eval(l.Eval(env), r.Eval(env)) },
		}
	}
}

// CNum renders an int32 as a mini-C constant (avoiding the unary
// int-min issue).
func CNum(v int32) string {
	if v >= 0 {
		return strconv.Itoa(int(v))
	}
	return fmt.Sprintf("(0 - %d)", uint32(-int64(v)))
}

// GenProgram generates a random whole mini-C program shaped to exercise
// the CodePatch optimizer's check classes:
//
//   - repeated straight-line stores to the same global / local (elision
//     candidates),
//   - counted loops writing loop-invariant globals (hoist + fast-check
//     candidates) next to loop-variant array writes (must stay full),
//   - helper-function calls inside loops (barriers that kill facts),
//   - quiet helpers (no global writes) between repeated stores, which
//     only the interprocedural planner can see through, including a
//     bounded recursive one (an SCC in the call graph),
//   - conditional stores (meet over paths).
//
// The generated source always compiles and terminates; store behaviour
// depends on the expressions, which come from ExprGen over the local
// variable set. The same seed always yields the same source.
func GenProgram(rng *rand.Rand) string {
	g := &ExprGen{Rng: rng, Vars: []string{"a", "b", "i", "t"}}
	e := func(depth int) string { return g.Gen(depth).Src }
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	arrLen := 8 + rng.Intn(8)
	w("int g0 = %d;\n", rng.Intn(100))
	w("int g1 = %d;\n", rng.Intn(100))
	w("int g2 = %d;\n", rng.Intn(100))
	w("int arr[%d];\n", arrLen)

	// Helper: its own loop stores a global loop-invariantly, and the
	// call itself is a fact-killing barrier at every call site.
	w("int helper(int a, int b) {\n")
	w("\tint i;\n\tint t;\n\ti = 0;\n\tt = b;\n")
	w("\twhile (i < %d) { g0 = g0 + a; t = t + i; i = i + 1; }\n", 2+rng.Intn(4))
	w("\treturn %s;\n}\n", e(2))

	// Quiet helper: touches only its own frame, so its summary is quiet
	// and calls to it preserve availability facts interprocedurally.
	w("int quiet(int a, int b) {\n")
	w("\tint i;\n\tint t;\n\ti = b;\n\tt = a;\n")
	w("\tif (a < b) { t = b - a; } else { t = a - b; }\n")
	w("\treturn %s;\n}\n", e(2))

	// Bounded recursive quiet helper: a call-graph SCC whose summary must
	// still converge to quiet.
	w("int qrec(int n, int acc) {\n")
	w("\tif (n <= 0) { return acc; }\n")
	w("\treturn qrec(n - 1, acc + n);\n}\n")

	w("int main() {\n")
	w("\tint a = %s;\n", CNum(int32(rng.Intn(4001)-2000)))
	w("\tint b = %s;\n", CNum(int32(rng.Uint32())))
	w("\tint i;\n\tint t;\n\ti = 0;\n\tt = 0;\n")

	// Straight-line repeated stores: elision fodder. A quiet call (or a
	// bounded recursive one) sometimes lands between the two stores: the
	// intraprocedural planner must keep the second check, the
	// interprocedural one may elide it.
	for j := 0; j < 2+rng.Intn(3); j++ {
		w("\tg1 = %s;\n", e(1+rng.Intn(2)))
		switch rng.Intn(3) {
		case 0:
			w("\tt = t + quiet(i, a);\n")
		case 1:
			w("\tt = t + qrec(%d, t);\n", 1+rng.Intn(5))
		}
		w("\tg1 = g1 + %s;\n", e(1))
	}
	w("\ta = %s;\n\ta = a + t;\n", e(2))

	// Loop 1: loop-invariant global stores + loop-variant array store.
	w("\tfor (i = 0; i < %d; i = i + 1) {\n", 4+rng.Intn(12))
	w("\t\tg2 = g2 + %s;\n", e(1))
	w("\t\tarr[i %% %d] = %s;\n", arrLen, e(1))
	switch rng.Intn(3) {
	case 0:
		w("\t\tt = t + helper(i, a);\n") // writing call in the loop: no hoist
	case 1:
		w("\t\tt = t + quiet(i, a);\n") // quiet call: interproc may still hoist
	default:
		w("\t\tt = t + i;\n")
	}
	w("\t}\n")

	// Loop 2: while form, invariant store only.
	w("\ti = 0;\n")
	w("\twhile (i < %d) { g0 = g0 - %s; i = i + 1; }\n", 3+rng.Intn(8), e(1))

	// Conditional store: one arm writes, the other does not.
	w("\tif (%s) { g2 = g2 + 1; } else { t = t - 1; }\n", e(1))

	// A call after everything, then final stores that may elide.
	w("\tt = t + helper(a, b);\n")
	w("\tg0 = t;\n\tg0 = g0 + a;\n")
	w("\tprint(g0); print(g1); print(g2); print(t);\n")
	w("\treturn 0;\n}\n")
	return b.String()
}
