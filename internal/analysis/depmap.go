package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The dependence map records, for every check the optimizer removed or
// weakened, the static facts that justify the decision. It is the
// invalidation index the ROADMAP's incremental re-patcher needs: when a
// monitor update (or a future self-modifying workload) changes a store
// site or a function body, DependentsOf names exactly the optimized
// sites whose justification may no longer hold, so the re-patcher can
// restore those checks without a whole-program re-patch. It is also how
// VerifyPatched proves interprocedural elisions sound: each recorded
// dependency is re-derived independently from the patched image and the
// elision is rejected unless every one still holds.

// Dep kinds.
const (
	// DepSummary: the decision relies on callee Func having a may-write
	// summary that cannot alias the checked address. Index is unused.
	DepSummary = "summary"
	// DepCheck: the decision relies on the instruction at (Func, Index)
	// — a checked store or an explicit check pair — covering the same
	// address expression. Index is a pre-patch body index in the plan,
	// remapped to the patched body by the patcher.
	DepCheck = "check"
	// DepEntry: the decision relies on the address being checked on
	// every path into Func (an interprocedural entry fact). Index is
	// unused.
	DepEntry = "entry"
)

// Dep is one static fact an optimization decision depends on.
type Dep struct {
	Kind  string `json:"kind"`
	Func  string `json:"func"`
	Index int    `json:"index,omitempty"`
}

func (d Dep) String() string {
	switch d.Kind {
	case DepCheck:
		return fmt.Sprintf("check %s@%d", d.Func, d.Index)
	case DepSummary:
		return fmt.Sprintf("summary %s", d.Func)
	default:
		return fmt.Sprintf("%s %s", d.Kind, d.Func)
	}
}

// Site classes.
const (
	SiteElided = "elided"
	SiteFast   = "fast"
	SiteHoist  = "hoist"
)

// DepSite is one optimized site: an elided store, a fast-stub check, or
// a hoisted preliminary-check pair, with the facts that justify it.
type DepSite struct {
	Func string `json:"func"`
	// Index is the body index of the site. In a freshly built plan it
	// is a pre-patch index; the patcher remaps it to the patched body
	// (the store word for elided sites, the first pair word otherwise).
	Index int    `json:"index"`
	Class string `json:"class"`
	// Expr is the checked address expression, in Expr.String form.
	Expr string `json:"expr"`
	Deps []Dep  `json:"deps,omitempty"`
}

// DepMap is the full dependence map of one optimized patch.
type DepMap struct {
	Sites []DepSite `json:"sites"`
}

// normalize sorts sites by (Func, Index) and each site's deps by
// (Kind, Func, Index), making the JSON encoding deterministic.
func (dm *DepMap) normalize() {
	for i := range dm.Sites {
		deps := dm.Sites[i].Deps
		sort.Slice(deps, func(a, b int) bool {
			if deps[a].Kind != deps[b].Kind {
				return deps[a].Kind < deps[b].Kind
			}
			if deps[a].Func != deps[b].Func {
				return deps[a].Func < deps[b].Func
			}
			return deps[a].Index < deps[b].Index
		})
	}
	sort.Slice(dm.Sites, func(a, b int) bool {
		if dm.Sites[a].Func != dm.Sites[b].Func {
			return dm.Sites[a].Func < dm.Sites[b].Func
		}
		return dm.Sites[a].Index < dm.Sites[b].Index
	})
}

// MarshalJSON emits a deterministic encoding (sites and deps sorted).
func (dm *DepMap) MarshalJSON() ([]byte, error) {
	dm.normalize()
	type alias DepMap
	return json.Marshal((*alias)(dm))
}

// ParseDepMap decodes a serialized dependence map.
func ParseDepMap(data []byte) (*DepMap, error) {
	var dm DepMap
	if err := json.Unmarshal(data, &dm); err != nil {
		return nil, fmt.Errorf("depmap: %w", err)
	}
	dm.normalize()
	return &dm, nil
}

// Encode serializes the map deterministically.
func (dm *DepMap) Encode() ([]byte, error) { return json.Marshal(dm) }

// site returns the recorded site at (fn, idx), or nil.
func (dm *DepMap) site(fn string, idx int) *DepSite {
	for i := range dm.Sites {
		if dm.Sites[i].Func == fn && dm.Sites[i].Index == idx {
			return &dm.Sites[i]
		}
	}
	return nil
}

// SiteRef names one optimized site by its patched-body location. It is
// the key the incremental re-patcher uses to track demoted sites — the
// optimized sites whose static justification a runtime code mutation
// invalidated, now covered dynamically by the store-observation
// fallback instead of by the dependence map.
type SiteRef struct {
	Func  string
	Index int
}

// Ref returns the site's location key.
func (s *DepSite) Ref() SiteRef { return SiteRef{Func: s.Func, Index: s.Index} }

// Drop removes the site at ref (if present), returning whether a site
// was removed. The incremental re-patcher calls it when it demotes a
// site: a demoted site is no longer justified by static facts, so
// keeping its entry would make the map lie to VerifyRepatched.
func (dm *DepMap) Drop(ref SiteRef) bool {
	for i := range dm.Sites {
		if dm.Sites[i].Func == ref.Func && dm.Sites[i].Index == ref.Index {
			dm.Sites = append(dm.Sites[:i], dm.Sites[i+1:]...)
			return true
		}
	}
	return false
}

// DependentsOf returns the optimized sites whose justification mentions
// fn — as a callee summary, a covering check inside it, an entry fact
// into it, or because the site lives in fn itself. This is the
// invalidation query the incremental re-patcher runs when a function's
// stores change.
func (dm *DepMap) DependentsOf(fn string) []DepSite {
	var out []DepSite
	for _, s := range dm.Sites {
		if s.Func == fn {
			out = append(out, s)
			continue
		}
		for _, d := range s.Deps {
			if d.Func == fn {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
