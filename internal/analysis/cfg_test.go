package analysis

import (
	"testing"

	"edb/internal/asm"
	"edb/internal/isa"
)

// fn builds a one-off function for CFG tests.
func fn(build func(f *asm.Func)) *asm.Func {
	f := &asm.Func{Name: "t", Labels: make(map[string]int)}
	build(f)
	return f
}

func TestBuildCFGStraightLine(t *testing.T) {
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Li(isa.Reg(10), 1))
		f.Emit(asm.Sw(isa.Reg(10), isa.FP, -4))
		f.Emit(asm.Ret())
	})
	g := BuildCFG(f)
	if g.Irregular {
		t.Fatal("straight-line code marked irregular")
	}
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(g.Blocks))
	}
	if b := g.Blocks[0]; b.Start != 0 || b.End != 3 || len(b.Succs) != 0 {
		t.Errorf("block = %+v", b)
	}
}

// diamond builds the classic if/else CFG:
//
//	B0: entry, cond branch to "else"
//	B1: then, jmp "join"
//	B2: else (label target)
//	B3: join
func diamond() *asm.Func {
	return fn(func(f *asm.Func) {
		f.Emit(asm.Br(isa.BEQ, isa.Reg(10), isa.R0, "else")) // B0
		f.Emit(asm.Li(isa.Reg(11), 1))                       // B1
		f.Emit(asm.Jmp("join"))
		f.Mark("else")
		f.Emit(asm.Li(isa.Reg(11), 2)) // B2
		f.Mark("join")
		f.Emit(asm.Sw(isa.Reg(11), isa.FP, -4)) // B3
		f.Emit(asm.Ret())
	})
}

func TestBuildCFGDiamondDominators(t *testing.T) {
	g := BuildCFG(diamond())
	if g.Irregular {
		t.Fatal("diamond marked irregular")
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	// Entry dominates everything; neither arm dominates the join.
	for b := 0; b < 4; b++ {
		if !g.Dominates(0, b) {
			t.Errorf("entry should dominate B%d", b)
		}
	}
	if g.Dominates(1, 3) || g.Dominates(2, 3) {
		t.Error("an if/else arm must not dominate the join")
	}
	if g.Idom[3] != 0 {
		t.Errorf("idom(join) = %d, want 0", g.Idom[3])
	}
	if len(g.NaturalLoops()) != 0 {
		t.Error("diamond has no loops")
	}
}

// counted builds a canonical counted loop:
//
//	B0: li i, 0; li n, 10        (preheader, falls through)
//	B1: head: bge i, n, done     (header)
//	B2: la r12, g; sw i, (r12); addi i, i, 1; jmp head
//	B3: done: ret
func counted() *asm.Func {
	return fn(func(f *asm.Func) {
		f.Emit(asm.Li(isa.Reg(10), 0))
		f.Emit(asm.Li(isa.Reg(11), 10))
		f.Mark("head")
		f.Emit(asm.Br(isa.BGE, isa.Reg(10), isa.Reg(11), "done"))
		f.Emit(asm.La(isa.Reg(12), "g", 0))
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0))
		f.Emit(asm.I(isa.ADDI, isa.Reg(10), isa.Reg(10), 1))
		f.Emit(asm.Jmp("head"))
		f.Mark("done")
		f.Emit(asm.Ret())
	})
}

func TestNaturalLoop(t *testing.T) {
	g := BuildCFG(counted())
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = B%d, want B1", l.Header)
	}
	if len(l.Blocks) != 2 || !l.Blocks[1] || !l.Blocks[2] {
		t.Errorf("loop blocks = %v, want {1,2}", l.Blocks)
	}
	if len(l.BackEdges) != 1 || l.BackEdges[0] != [2]int{2, 1} {
		t.Errorf("back edges = %v, want [[2 1]]", l.BackEdges)
	}
}

func TestIrregularControlFlow(t *testing.T) {
	f := fn(func(f *asm.Func) {
		// Raw-immediate branch with no label: cannot be modeled.
		f.Emit(asm.I(isa.BEQ, isa.Reg(10), isa.R0, 2))
		f.Emit(asm.Sw(isa.Reg(10), isa.FP, -4))
		f.Emit(asm.Ret())
	})
	g := BuildCFG(f)
	if !g.Irregular {
		t.Fatal("raw-immediate branch should mark the CFG irregular")
	}
	// Indirect jump likewise.
	f2 := fn(func(f *asm.Func) {
		f.Emit(asm.I(isa.JALR, isa.R0, isa.Reg(10), 0))
	})
	if !BuildCFG(f2).Irregular {
		t.Error("indirect jalr should mark the CFG irregular")
	}
}

func TestEndOfBodyLabel(t *testing.T) {
	// A branch to a label at len(Body) falls out of the function: the
	// edge is simply dropped, not an error.
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Br(isa.BEQ, isa.Reg(10), isa.R0, "end"))
		f.Emit(asm.Ret())
		f.Mark("end")
	})
	g := BuildCFG(f)
	if g.Irregular {
		t.Fatal("end-of-body label marked irregular")
	}
	if len(g.Blocks[0].Succs) != 1 {
		t.Errorf("succs = %v, want just the fallthrough", g.Blocks[0].Succs)
	}
}
