package analysis

import (
	"fmt"
	"sort"

	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/isa"
)

// checkFuncName mirrors codepatch.CheckFuncName (duplicated to avoid an
// import cycle; a codepatch test pins the two constants together).
const checkFuncName = "__wms_check"

// Violation is one soundness defect found in a patched program.
type Violation struct {
	Func  string
	Index int    // body instruction index (-1 for whole-program defects)
	Inst  string // disassembly of the offending instruction, if any
	Msg   string
}

func (v Violation) String() string {
	loc := v.Func
	if loc == "" {
		loc = "<program>"
	}
	if v.Index >= 0 {
		loc = fmt.Sprintf("%s+%d", loc, v.Index)
	}
	if v.Inst != "" {
		return fmt.Sprintf("%s: %s: %s", loc, v.Inst, v.Msg)
	}
	return fmt.Sprintf("%s: %s", loc, v.Msg)
}

// stub-entry immediates of the check call.
var (
	stubFull = int32(arch.TextBase)
	stubFast = int32(arch.TextBase) + 4
	stubPre  = int32(arch.TextBase) + 8
)

// materialisesAT2 reports whether the instruction loads the check
// address register, and if so which expression it materialises under
// env.
func materialisesAT2(in asm.Inst, env *regEnv) (Expr, bool) {
	switch in.Pseudo {
	case asm.PLa:
		if in.RD == isa.AT2 {
			return Expr{Kind: ESymbol, Sym: in.Sym, Off: int64(in.Imm)}, true
		}
	case asm.PLi:
		if in.RD == isa.AT2 {
			return Expr{Kind: EConst, Off: int64(in.Imm)}, true
		}
	case asm.PNone:
		if in.Op == isa.ADDI && in.RD == isa.AT2 {
			return env.resolve(in.RS1, in.Imm), true
		}
	}
	return Expr{}, false
}

// pairAt recognises a check pair starting at body index i: an AT2
// materialisation immediately followed by a check call. Returns the
// checked address expression and the call's stub immediate.
func pairAt(body []asm.Inst, i int, env *regEnv) (Expr, int32, bool) {
	e, ok := materialisesAT2(body[i], env)
	if !ok || i+1 >= len(body) {
		return Expr{}, 0, false
	}
	next := body[i+1]
	if kindOf(next) != kindCheckCall {
		return Expr{}, 0, false
	}
	return e, next.Imm, true
}

// VerifyPatched statically proves a CodePatch-instrumented program
// sound:
//
//   - the check stub is the first function (so it assembles at TextBase,
//     within the check call's 16-bit immediate) and its body is 1–3
//     return-via-PLink words;
//   - every SW is covered: either its own immediately-preceding check
//     pair, or — for stores whose check the optimizer elided — a
//     dominating check of a provably-equal address expression on every
//     path, with no intervening redefinition of the base register and no
//     intervening call;
//   - the reserved registers AT2 and PLink are touched only by check
//     pairs: program code never reads or writes them, so a check can
//     never clobber live program state;
//   - every check call targets a stub entry and is fed by an AT2
//     materialisation.
//
// It returns nil when the program verifies.
//
// Coverage is proved with the same interprocedural machinery the
// planner uses — recomputed independently over the PATCHED image (call
// graph, write summaries and entry sets all re-derived, never trusted
// from the plan) — so cross-call elisions verify without any input from
// the optimizer.
func VerifyPatched(p *asm.Program) []Violation {
	return VerifyPatchedWithDeps(p, nil)
}

// VerifyPatchedWithDeps is VerifyPatched plus dependence-map
// validation: when dm is non-nil, every elided store must have a
// matching site in the map, every recorded site must exist in the
// patched program with the recorded address expression and class, and
// every recorded dependency must be independently re-derivable from the
// patched image (the covering check exists and checks the same
// expression; the callee summary still cannot write the address; the
// entry fact still holds). A corrupted or stale map — the situation the
// incremental re-patcher must detect — yields violations.
func VerifyPatchedWithDeps(p *asm.Program, dm *DepMap) []Violation {
	return VerifyRepatched(p, dm, nil)
}

// VerifyRepatched is the incremental re-patcher's re-proof obligation,
// run after every runtime code mutation: VerifyPatchedWithDeps, except
// that stores at demoted sites are accepted without a dominating
// static check. A demoted site is an elided store whose static
// justification a mutation invalidated; the re-patcher removed it from
// the dependence map and the runtime now covers it dynamically — the
// store-observation hook routes every such store through a full
// CheckWrite, so the notification contract holds without the static
// fact. Everything else (stub shape, reserved registers, every
// still-elided store, every surviving dependence-map entry) is proved
// exactly as for a fresh patch. A demoted set naming a site that is
// not an elided store is itself a violation: demotion must never be
// used to wave through a store the patcher simply forgot to check.
func VerifyRepatched(p *asm.Program, dm *DepMap, demoted map[SiteRef]bool) []Violation {
	var vs []Violation
	if len(p.Funcs) == 0 || p.Funcs[0].Name != checkFuncName {
		vs = append(vs, Violation{Index: -1,
			Msg: fmt.Sprintf("first function must be the %s stub at TextBase", checkFuncName)})
		// Still verify function bodies below: every store will be
		// reported uncovered if the program was never patched.
	} else {
		stub := p.Funcs[0]
		if len(stub.Body) < 1 || len(stub.Body) > 3 {
			vs = append(vs, Violation{Func: stub.Name, Index: -1,
				Msg: fmt.Sprintf("check stub has %d words, want 1-3", len(stub.Body))})
		}
		for i, in := range stub.Body {
			if in.Pseudo != asm.PNone || in.Op != isa.JALR ||
				in.RD != isa.R0 || in.RS1 != isa.PLink || in.Imm != 0 {
				vs = append(vs, Violation{Func: stub.Name, Index: i, Inst: in.String(),
					Msg: "stub word must be `jalr r0, plink, 0`"})
			}
		}
	}

	ip := computeInterproc(p, true)
	ctx := ip.context(true)
	facts := newPatchFacts()
	for fi, f := range p.Funcs {
		if fi == 0 && f.Name == checkFuncName {
			continue
		}
		vs = append(vs, verifyFunc(f, ctx, facts, demoted)...)
	}
	// A demoted site must actually be an elided store in the patched
	// program — anything else means the demoted set is being abused to
	// hide a genuinely uncovered store.
	demotedKeys := make([]SiteRef, 0, len(demoted))
	for ref := range demoted {
		demotedKeys = append(demotedKeys, ref)
	}
	sort.Slice(demotedKeys, func(i, j int) bool {
		if demotedKeys[i].Func != demotedKeys[j].Func {
			return demotedKeys[i].Func < demotedKeys[j].Func
		}
		return demotedKeys[i].Index < demotedKeys[j].Index
	})
	for _, ref := range demotedKeys {
		if _, ok := facts.elided[siteKey{ref.Func, ref.Index}]; !ok {
			vs = append(vs, Violation{Func: ref.Func, Index: ref.Index,
				Msg: "demoted set names a site that is not an elided store"})
		}
	}
	if dm != nil {
		vs = append(vs, validateDeps(p, dm, ip, facts, demoted)...)
	}
	return vs
}

// siteKey addresses one body instruction program-wide.
type siteKey struct {
	fn  string
	idx int
}

// patchFacts collects, during verification, the ground truth the
// dependence-map validation cross-checks against: the resolved address
// expression of every store, every check pair (with its stub entry),
// and every store the patcher elided.
type patchFacts struct {
	stores map[siteKey]Expr
	pairs  map[siteKey]pairFact
	elided map[siteKey]Expr
}

type pairFact struct {
	e   Expr
	imm int32
}

func newPatchFacts() *patchFacts {
	return &patchFacts{
		stores: make(map[siteKey]Expr),
		pairs:  make(map[siteKey]pairFact),
		elided: make(map[siteKey]Expr),
	}
}

func verifyFunc(f *asm.Func, ctx *ipContext, facts *patchFacts, demoted map[SiteRef]bool) []Violation {
	var vs []Violation
	add := func(i int, in asm.Inst, msg string) {
		vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(), Msg: msg})
	}

	ctx.walkAvail(f, ctx.entryFor(f.Name), func(i int, st ckSet, env *regEnv) {
		inst := f.Body[i]
		if e, jimm, ok := pairAt(f.Body, i, env); ok {
			switch jimm {
			case stubFull, stubFast, stubPre:
				facts.pairs[siteKey{f.Name, i}] = pairFact{e: e, imm: jimm}
			default:
				add(i+1, f.Body[i+1],
					fmt.Sprintf("check call targets %#x, not a stub entry", uint32(jimm)))
			}
			return // walkAvail consumes the pair
		}
		// Not part of a pair: enforce the reserved-register rules.
		if kindOf(inst) == kindCheckCall {
			add(i, inst, "check call without a preceding AT2 address materialisation")
		} else {
			for _, r := range defs(inst) {
				if r == isa.AT2 || r == isa.PLink {
					add(i, inst, fmt.Sprintf("program code writes reserved register r%d", r))
				}
			}
			for _, r := range uses(inst) {
				if r == isa.AT2 || r == isa.PLink {
					add(i, inst, fmt.Sprintf("program code reads reserved register r%d", r))
				}
			}
		}
		if inst.Pseudo == asm.PNone && inst.Op == isa.SW {
			e := env.resolve(inst.RS1, inst.Imm)
			facts.stores[siteKey{f.Name, i}] = e
			if inst.CheckElided {
				facts.elided[siteKey{f.Name, i}] = e
			}
			if !st.has(e) && !(inst.CheckElided && demoted[SiteRef{Func: f.Name, Index: i}]) {
				add(i, inst, fmt.Sprintf(
					"store of %s not covered by a dominating matching check (available: %s)",
					e, st))
			}
		}
	})
	return vs
}

// validateDeps cross-checks a dependence map against the verified
// patched program.
func validateDeps(p *asm.Program, dm *DepMap, ip *Interproc, facts *patchFacts, demoted map[SiteRef]bool) []Violation {
	var vs []Violation
	add := func(fn string, idx int, msg string) {
		vs = append(vs, Violation{Func: fn, Index: idx, Msg: msg})
	}
	funcs := make(map[string]*asm.Func, len(p.Funcs))
	for _, f := range p.Funcs {
		funcs[f.Name] = f
	}

	// Completeness: every elided store has a site with the right expr.
	// Sorted so the violation list is deterministic.
	elidedKeys := make([]siteKey, 0, len(facts.elided))
	for k := range facts.elided {
		elidedKeys = append(elidedKeys, k)
	}
	sort.Slice(elidedKeys, func(i, j int) bool {
		if elidedKeys[i].fn != elidedKeys[j].fn {
			return elidedKeys[i].fn < elidedKeys[j].fn
		}
		return elidedKeys[i].idx < elidedKeys[j].idx
	})
	for _, k := range elidedKeys {
		if demoted[SiteRef{Func: k.fn, Index: k.idx}] {
			// Demoted: dynamically covered; the map rightly has no site.
			continue
		}
		e := facts.elided[k]
		s := dm.site(k.fn, k.idx)
		switch {
		case s == nil:
			add(k.fn, k.idx, fmt.Sprintf(
				"dependence map is missing a site for elided store of %s", e))
		case s.Class != SiteElided:
			add(k.fn, k.idx, fmt.Sprintf(
				"dependence map records class %q for elided store of %s", s.Class, e))
		case s.Expr != e.String():
			add(k.fn, k.idx, fmt.Sprintf(
				"dependence map records expr %s for elided store of %s", s.Expr, e))
		}
	}

	// Soundness: every recorded site and dependency re-derives from the
	// patched image.
	for _, s := range dm.Sites {
		k := siteKey{s.Func, s.Index}
		var e Expr
		switch s.Class {
		case SiteElided:
			ee, ok := facts.elided[k]
			if !ok || ee.String() != s.Expr {
				add(s.Func, s.Index, fmt.Sprintf(
					"dependence map site (elided, %s) does not match the patched program", s.Expr))
				continue
			}
			e = ee
		case SiteFast, SiteHoist:
			want := stubFast
			if s.Class == SiteHoist {
				want = stubPre
			}
			pf, ok := facts.pairs[k]
			if !ok || pf.imm != want || pf.e.String() != s.Expr {
				add(s.Func, s.Index, fmt.Sprintf(
					"dependence map site (%s, %s) does not match the patched program", s.Class, s.Expr))
				continue
			}
			e = pf.e
		default:
			add(s.Func, s.Index, fmt.Sprintf("dependence map site has unknown class %q", s.Class))
			continue
		}
		for _, d := range s.Deps {
			switch d.Kind {
			case DepCheck:
				dk := siteKey{d.Func, d.Index}
				if se, ok := facts.stores[dk]; ok && se == e {
					continue
				}
				if pf, ok := facts.pairs[dk]; ok && pf.e == e {
					continue
				}
				add(s.Func, s.Index, fmt.Sprintf(
					"dependence map check dep %s@%d does not check %s", d.Func, d.Index, e))
			case DepSummary:
				sum := ip.Summaries[d.Func]
				var fi frameInfo
				if f := funcs[s.Func]; f != nil {
					fi = frameOf(f)
				}
				if sum == nil || sum.Writes.writesExpr(e, fi) {
					add(s.Func, s.Index, fmt.Sprintf(
						"dependence map summary dep on %s does not hold for %s", d.Func, e))
				}
			case DepEntry:
				if es, ok := ip.entries[s.Func]; !ok || !es.has(e) {
					add(s.Func, s.Index, fmt.Sprintf(
						"dependence map entry dep does not hold: %s is not checked on entry to %s", e, s.Func))
				}
			default:
				add(s.Func, s.Index, fmt.Sprintf("dependence map dep has unknown kind %q", d.Kind))
			}
		}
	}
	return vs
}

// VerifyTrapPatched statically proves a TrapPatch-rewritten program
// sound: no SW instructions remain, every TRAP immediate indexes the
// side table exactly once, and every side-table entry is a store (so
// the run-time handler emulates real stores only).
func VerifyTrapPatched(p *asm.Program, table []asm.Inst) []Violation {
	var vs []Violation
	for ti, in := range table {
		if in.Pseudo != asm.PNone || in.Op != isa.SW {
			vs = append(vs, Violation{Index: -1, Inst: in.String(),
				Msg: fmt.Sprintf("side-table entry %d is not a store", ti)})
		}
	}
	seen := make(map[int32]string)
	for _, f := range p.Funcs {
		for i, in := range f.Body {
			if in.Pseudo != asm.PNone {
				continue
			}
			switch in.Op {
			case isa.SW:
				vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(),
					Msg: "unpatched store remains in a TrapPatch program"})
			case isa.TRAP:
				if in.Imm < 0 || int(in.Imm) >= len(table) {
					vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(),
						Msg: fmt.Sprintf("trap code %d outside side table (len %d)", in.Imm, len(table))})
				} else if prev, dup := seen[in.Imm]; dup {
					vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(),
						Msg: fmt.Sprintf("trap code %d already used at %s", in.Imm, prev)})
				} else {
					seen[in.Imm] = fmt.Sprintf("%s+%d", f.Name, i)
				}
			}
		}
	}
	return vs
}
