package analysis

import (
	"fmt"

	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/isa"
)

// checkFuncName mirrors codepatch.CheckFuncName (duplicated to avoid an
// import cycle; a codepatch test pins the two constants together).
const checkFuncName = "__wms_check"

// Violation is one soundness defect found in a patched program.
type Violation struct {
	Func  string
	Index int    // body instruction index (-1 for whole-program defects)
	Inst  string // disassembly of the offending instruction, if any
	Msg   string
}

func (v Violation) String() string {
	loc := v.Func
	if loc == "" {
		loc = "<program>"
	}
	if v.Index >= 0 {
		loc = fmt.Sprintf("%s+%d", loc, v.Index)
	}
	if v.Inst != "" {
		return fmt.Sprintf("%s: %s: %s", loc, v.Inst, v.Msg)
	}
	return fmt.Sprintf("%s: %s", loc, v.Msg)
}

// stub-entry immediates of the check call.
var (
	stubFull = int32(arch.TextBase)
	stubFast = int32(arch.TextBase) + 4
	stubPre  = int32(arch.TextBase) + 8
)

// materialisesAT2 reports whether the instruction loads the check
// address register, and if so which expression it materialises under
// env.
func materialisesAT2(in asm.Inst, env *regEnv) (Expr, bool) {
	switch in.Pseudo {
	case asm.PLa:
		if in.RD == isa.AT2 {
			return Expr{Kind: ESymbol, Sym: in.Sym, Off: int64(in.Imm)}, true
		}
	case asm.PLi:
		if in.RD == isa.AT2 {
			return Expr{Kind: EConst, Off: int64(in.Imm)}, true
		}
	case asm.PNone:
		if in.Op == isa.ADDI && in.RD == isa.AT2 {
			return env.resolve(in.RS1, in.Imm), true
		}
	}
	return Expr{}, false
}

// pairAt recognises a check pair starting at body index i: an AT2
// materialisation immediately followed by a check call. Returns the
// checked address expression and the call's stub immediate.
func pairAt(body []asm.Inst, i int, env *regEnv) (Expr, int32, bool) {
	e, ok := materialisesAT2(body[i], env)
	if !ok || i+1 >= len(body) {
		return Expr{}, 0, false
	}
	next := body[i+1]
	if kindOf(next) != kindCheckCall {
		return Expr{}, 0, false
	}
	return e, next.Imm, true
}

// stepVerify advances the most-recent-check state across the PATCHED
// program's instruction at body index i, recognising explicit check
// pairs. skip is true when a two-instruction pair was consumed.
func stepVerify(st ckState, env regEnv, body []asm.Inst, i int) (ckState, regEnv, bool) {
	in := body[i]
	if e, jimm, ok := pairAt(body, i, &env); ok {
		killState(&st, in)
		killState(&st, body[i+1])
		applyEnv(&env, in)
		applyEnv(&env, body[i+1])
		switch jimm {
		case stubFull, stubFast:
			st = ckState{known: true, e: e}
		case stubPre:
			// Preliminary (hoisted) checks warm the miss cache but do
			// not establish a most-recent-check fact.
		default:
			st = stateBottom
		}
		return st, env, true
	}
	if kindOf(in) == kindCheckCall {
		// Lone check call: AT2 holds an unknown address.
		applyEnv(&env, in)
		return stateBottom, env, false
	}
	if isBarrier(in) {
		applyEnv(&env, in)
		return stateBottom, env, false
	}
	killState(&st, in)
	applyEnv(&env, in)
	return st, env, false
}

// VerifyPatched statically proves a CodePatch-instrumented program
// sound:
//
//   - the check stub is the first function (so it assembles at TextBase,
//     within the check call's 16-bit immediate) and its body is 1–3
//     return-via-PLink words;
//   - every SW is covered: either its own immediately-preceding check
//     pair, or — for stores whose check the optimizer elided — a
//     dominating check of a provably-equal address expression on every
//     path, with no intervening redefinition of the base register and no
//     intervening call;
//   - the reserved registers AT2 and PLink are touched only by check
//     pairs: program code never reads or writes them, so a check can
//     never clobber live program state;
//   - every check call targets a stub entry and is fed by an AT2
//     materialisation.
//
// It returns nil when the program verifies.
func VerifyPatched(p *asm.Program) []Violation {
	var vs []Violation
	if len(p.Funcs) == 0 || p.Funcs[0].Name != checkFuncName {
		vs = append(vs, Violation{Index: -1,
			Msg: fmt.Sprintf("first function must be the %s stub at TextBase", checkFuncName)})
		// Still verify function bodies below: every store will be
		// reported uncovered if the program was never patched.
	} else {
		stub := p.Funcs[0]
		if len(stub.Body) < 1 || len(stub.Body) > 3 {
			vs = append(vs, Violation{Func: stub.Name, Index: -1,
				Msg: fmt.Sprintf("check stub has %d words, want 1-3", len(stub.Body))})
		}
		for i, in := range stub.Body {
			if in.Pseudo != asm.PNone || in.Op != isa.JALR ||
				in.RD != isa.R0 || in.RS1 != isa.PLink || in.Imm != 0 {
				vs = append(vs, Violation{Func: stub.Name, Index: i, Inst: in.String(),
					Msg: "stub word must be `jalr r0, plink, 0`"})
			}
		}
	}

	for fi, f := range p.Funcs {
		if fi == 0 && f.Name == checkFuncName {
			continue
		}
		vs = append(vs, verifyFunc(f)...)
	}
	return vs
}

func verifyFunc(f *asm.Func) []Violation {
	var vs []Violation
	add := func(i int, in asm.Inst, msg string) {
		vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(), Msg: msg})
	}

	g := BuildCFG(f)
	if len(g.Blocks) == 0 {
		return nil
	}
	in, _ := checkDataflow(g, true)

	for _, b := range g.Blocks {
		st := in[b.ID]
		if st.top {
			st = stateBottom // unreachable block: assume nothing
		}
		var env regEnv
		for i := b.Start; i < b.End; i++ {
			inst := f.Body[i]
			if _, jimm, ok := pairAt(f.Body, i, &env); ok {
				switch jimm {
				case stubFull, stubFast, stubPre:
				default:
					add(i+1, f.Body[i+1],
						fmt.Sprintf("check call targets %#x, not a stub entry", uint32(jimm)))
				}
				st, env, _ = stepVerify(st, env, f.Body, i)
				i++ // pair consumed
				continue
			}
			// Not part of a pair: enforce the reserved-register rules.
			if kindOf(inst) == kindCheckCall {
				add(i, inst, "check call without a preceding AT2 address materialisation")
			} else {
				for _, r := range defs(inst) {
					if r == isa.AT2 || r == isa.PLink {
						add(i, inst, fmt.Sprintf("program code writes reserved register r%d", r))
					}
				}
				for _, r := range uses(inst) {
					if r == isa.AT2 || r == isa.PLink {
						add(i, inst, fmt.Sprintf("program code reads reserved register r%d", r))
					}
				}
			}
			if inst.Pseudo == asm.PNone && inst.Op == isa.SW {
				e := env.resolve(inst.RS1, inst.Imm)
				if !(st.known && st.e == e) {
					have := "nothing"
					if st.known {
						have = st.e.String()
					}
					add(i, inst, fmt.Sprintf(
						"store of %s not covered by a dominating matching check (last check: %s)",
						e, have))
				}
			}
			st, env, _ = stepVerify(st, env, f.Body, i)
		}
	}
	return vs
}

// VerifyTrapPatched statically proves a TrapPatch-rewritten program
// sound: no SW instructions remain, every TRAP immediate indexes the
// side table exactly once, and every side-table entry is a store (so
// the run-time handler emulates real stores only).
func VerifyTrapPatched(p *asm.Program, table []asm.Inst) []Violation {
	var vs []Violation
	for ti, in := range table {
		if in.Pseudo != asm.PNone || in.Op != isa.SW {
			vs = append(vs, Violation{Index: -1, Inst: in.String(),
				Msg: fmt.Sprintf("side-table entry %d is not a store", ti)})
		}
	}
	seen := make(map[int32]string)
	for _, f := range p.Funcs {
		for i, in := range f.Body {
			if in.Pseudo != asm.PNone {
				continue
			}
			switch in.Op {
			case isa.SW:
				vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(),
					Msg: "unpatched store remains in a TrapPatch program"})
			case isa.TRAP:
				if in.Imm < 0 || int(in.Imm) >= len(table) {
					vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(),
						Msg: fmt.Sprintf("trap code %d outside side table (len %d)", in.Imm, len(table))})
				} else if prev, dup := seen[in.Imm]; dup {
					vs = append(vs, Violation{Func: f.Name, Index: i, Inst: in.String(),
						Msg: fmt.Sprintf("trap code %d already used at %s", in.Imm, prev)})
				} else {
					seen[in.Imm] = fmt.Sprintf("%s+%d", f.Name, i)
				}
			}
		}
	}
	return vs
}
