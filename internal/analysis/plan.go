package analysis

import (
	"edb/internal/asm"
	"edb/internal/isa"
)

// CheckClass is the statically assigned class of one store's CodePatch
// check.
type CheckClass int

// Check classes, cheapest first at run time.
const (
	// CheckFull is the unoptimized per-store check: one SoftwareLookup.
	CheckFull CheckClass = iota
	// CheckFast is a downgraded in-loop check covered by a hoisted
	// preliminary check: it first consults the preliminary-check cache
	// for the price of an inline compare, falling back to the full
	// lookup on a miss.
	CheckFast
	// CheckElided is a check eliminated entirely: a dominating check of
	// a provably-equal address expression, with no intervening
	// redefinition of the base register and no intervening call, already
	// covers this store.
	CheckElided
)

func (c CheckClass) String() string {
	switch c {
	case CheckFast:
		return "fast"
	case CheckElided:
		return "elided"
	default:
		return "full"
	}
}

// maxHoistsPerLoop bounds the preliminary checks inserted in one loop
// preheader, so loop-entry cost stays bounded.
const maxHoistsPerLoop = 4

// Hoist is one preheader insertion: preliminary checks of Exprs are
// inserted immediately before body index InsertAt (the loop header),
// with the header's labels re-pointed past them so only loop entry —
// never the back edge — executes them.
type Hoist struct {
	InsertAt int
	Exprs    []Expr
}

// FuncPlan is the optimization plan for one function.
type FuncPlan struct {
	// CFG is the graph the plan was computed over (pre-patch body
	// indices).
	CFG *CFG
	// Class maps the body index of every SW to its check class; stores
	// absent from the map are CheckFull.
	Class map[int]CheckClass
	// Hoists lists preheader insertions in increasing InsertAt order.
	Hoists []Hoist
	// fastCover maps a CheckFast store's body index to the InsertAt of
	// the hoist whose preliminary check covers it (dependence-map input).
	fastCover map[int]int
}

// ClassOf returns the check class of the store at body index i.
func (fp *FuncPlan) ClassOf(i int) CheckClass {
	if fp == nil || fp.Class == nil {
		return CheckFull
	}
	return fp.Class[i]
}

// Plan is a whole-program check-optimization plan.
type Plan struct {
	// Funcs maps function name to its plan.
	Funcs map[string]*FuncPlan

	// Static totals over all functions.
	EliminatedChecks int // stores whose check is elided
	FastChecks       int // stores downgraded to the cheap compare
	HoistedChecks    int // preliminary checks inserted in preheaders

	// EliminatedIntra is the elision count the purely intraprocedural
	// analysis achieves on the same program (the ablation baseline);
	// EliminatedChecks >= EliminatedIntra always holds, because the
	// interprocedural fact set pointwise contains the intraprocedural
	// most-recent-check fact.
	EliminatedIntra int

	// Interproc holds the whole-program facts (call graph, write
	// summaries, entry sets) the cross-call elisions were derived from;
	// nil when the plan was computed in intraprocedural mode.
	Interproc *Interproc
	// Deps records, per optimized site, the static facts justifying it;
	// nil in intraprocedural mode. codepatch remaps its indices onto the
	// patched body and ships it in the patch artifact.
	Deps *DepMap
}

// PlanOptions selects planner variants.
type PlanOptions struct {
	// Intraproc restricts the planner to PR 2's single-function
	// analysis: calls are barriers and no dependence map is produced.
	// Kept for the ablation and as a belt-and-suspenders fallback.
	Intraproc bool
}

// PlanChecks computes the static check-optimization plan for an
// UNPATCHED program: which stores' checks can be elided, which loops
// admit a hoisted preliminary check, and which in-loop checks downgrade
// to the cheap compare. codepatch.PatchWithOptions consumes the plan;
// it is deterministic, so the same source always yields the same
// patched image. Planning is interprocedural by default (cross-call
// elision via callee write summaries and entry facts); pass
// PlanOptions{Intraproc: true} for the PR 2 baseline.
func PlanChecks(p *asm.Program) *Plan {
	return PlanChecksWithOptions(p, PlanOptions{})
}

// PlanChecksWithOptions is PlanChecks with explicit options.
func PlanChecksWithOptions(p *asm.Program, o PlanOptions) *Plan {
	plan := &Plan{Funcs: make(map[string]*FuncPlan)}
	for _, f := range p.Funcs {
		fp := planFunc(f)
		plan.Funcs[f.Name] = fp
		for _, c := range fp.Class {
			if c == CheckElided {
				plan.EliminatedIntra++
			}
		}
	}
	if !o.Intraproc {
		plan.Interproc = ComputeInterproc(p)
		plan.Deps = &DepMap{}
		for _, f := range p.Funcs {
			planFuncInter(f, plan.Funcs[f.Name], plan.Interproc, plan.Deps)
		}
	}
	for _, fp := range plan.Funcs {
		for _, c := range fp.Class {
			switch c {
			case CheckElided:
				plan.EliminatedChecks++
			case CheckFast:
				plan.FastChecks++
			}
		}
		for _, h := range fp.Hoists {
			plan.HoistedChecks += len(h.Exprs)
		}
	}
	return plan
}

// planFuncInter upgrades fp with the interprocedural available-check
// dataflow: any store whose address expression is in the set on entry
// to the instruction loses its check, whether the covering fact crossed
// a call (a quiet callee), arrived on function entry (checked at every
// call site), or was simply out of reach of the single-fact lattice.
// Every resulting elision — including the purely intraprocedural ones —
// gets a dependence-map site recording the facts that justify it.
func planFuncInter(f *asm.Func, fp *FuncPlan, ip *Interproc, deps *DepMap) {
	g := fp.CFG
	if g == nil || g.Irregular || len(g.Blocks) == 0 {
		// Unmodelled control flow could enter the middle of a block,
		// bypassing the dominating check; leave the function alone.
		return
	}
	fi := frameOf(f)
	ctx := ip.context(false)
	entry := ctx.entryFor(f.Name)

	exprAt := make(map[int]Expr)   // store body index → address expression
	byExpr := make(map[Expr][]int) // address expression → store indices
	ctx.walkAvail(f, entry, func(i int, st ckSet, env *regEnv) {
		in := f.Body[i]
		if in.Pseudo != asm.PNone || in.Op != isa.SW {
			return
		}
		e := env.resolve(in.RS1, in.Imm)
		exprAt[i] = e
		byExpr[e] = append(byExpr[e], i)
		if st.has(e) {
			fp.Class[i] = CheckElided
		}
	})

	// Dependence-map emission. Indices are pre-patch here; the patcher
	// remaps them onto the patched body.
	indices := make([]int, 0, len(exprAt))
	for i := range exprAt {
		indices = append(indices, i)
	}
	sortInts(indices)
	for _, i := range indices {
		e := exprAt[i]
		switch fp.Class[i] {
		case CheckElided:
			site := DepSite{Func: f.Name, Index: i, Class: SiteElided, Expr: e.String()}
			for _, j := range byExpr[e] {
				if j != i {
					site.Deps = append(site.Deps, Dep{Kind: DepCheck, Func: f.Name, Index: j})
				}
			}
			if entry.has(e) {
				site.Deps = append(site.Deps, Dep{Kind: DepEntry, Func: f.Name})
			}
			for _, callee := range ip.CallGraph.Callees[f.Name] {
				if s := ip.Summaries[callee]; s != nil && !s.Writes.writesExpr(e, fi) {
					site.Deps = append(site.Deps, Dep{Kind: DepSummary, Func: callee})
				}
			}
			deps.Sites = append(deps.Sites, site)
		case CheckFast:
			site := DepSite{Func: f.Name, Index: i, Class: SiteFast, Expr: e.String()}
			if at, ok := fp.fastCover[i]; ok {
				site.Deps = append(site.Deps, Dep{Kind: DepCheck, Func: f.Name, Index: at})
			}
			deps.Sites = append(deps.Sites, site)
		}
	}
	for _, h := range fp.Hoists {
		for _, e := range h.Exprs {
			deps.Sites = append(deps.Sites, DepSite{
				Func: f.Name, Index: h.InsertAt, Class: SiteHoist, Expr: e.String(),
			})
		}
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func planFunc(f *asm.Func) *FuncPlan {
	g := BuildCFG(f)
	fp := &FuncPlan{CFG: g, Class: make(map[int]CheckClass), fastCover: make(map[int]int)}
	if g.Irregular || len(g.Blocks) == 0 {
		return fp // no optimization for control flow we cannot model
	}

	in, _ := checkDataflow(g)

	// Final walk: classify elidable stores and record every store's
	// resolved expression for the hoisting pass.
	type storeInfo struct {
		idx   int
		block int
		e     Expr
	}
	var stores []storeInfo
	for _, b := range g.Blocks {
		st := in[b.ID]
		var env regEnv
		for i := b.Start; i < b.End; i++ {
			inst := f.Body[i]
			if inst.Pseudo == asm.PNone && inst.Op == isa.SW {
				e := env.resolve(inst.RS1, inst.Imm)
				if st.known && st.e == e {
					fp.Class[i] = CheckElided
				} else {
					stores = append(stores, storeInfo{idx: i, block: b.ID, e: e})
				}
			}
			st, env = stepPlan(st, env, inst)
		}
	}

	// Loop hoisting: for each non-elided store, find the outermost safe
	// loop in which its address is invariant.
	loops := g.NaturalLoops()          // outermost first
	hoistExprs := make(map[int][]Expr) // loop index → deduped exprs
	for _, s := range stores {
		for li, l := range loops {
			if !l.Blocks[s.block] || !hoistSafe(g, f, l) {
				continue
			}
			if !loopInvariant(g, f, l, s.e) {
				continue
			}
			exprs := hoistExprs[li]
			found := false
			for _, e := range exprs {
				if e == s.e {
					found = true
					break
				}
			}
			if !found {
				if len(exprs) >= maxHoistsPerLoop {
					continue // this loop is full; try an inner one
				}
				hoistExprs[li] = append(exprs, s.e)
			}
			fp.Class[s.idx] = CheckFast
			fp.fastCover[s.idx] = g.Blocks[l.Header].Start
			break // outermost qualifying loop wins
		}
	}

	for li, l := range loops {
		exprs := hoistExprs[li]
		if len(exprs) == 0 {
			continue
		}
		fp.Hoists = append(fp.Hoists, Hoist{
			InsertAt: g.Blocks[l.Header].Start,
			Exprs:    exprs,
		})
	}
	// Sort hoists by insertion point (stable small-n insertion sort).
	for i := 1; i < len(fp.Hoists); i++ {
		for j := i; j > 0 && fp.Hoists[j].InsertAt < fp.Hoists[j-1].InsertAt; j-- {
			fp.Hoists[j], fp.Hoists[j-1] = fp.Hoists[j-1], fp.Hoists[j]
		}
	}
	return fp
}

// stepPlan advances the most-recent-check state across one instruction
// of an UNPATCHED program, where every store doubles as the check the
// patcher will insert for it.
func stepPlan(st ckState, env regEnv, inst asm.Inst) (ckState, regEnv) {
	if isBarrier(inst) {
		applyEnv(&env, inst)
		return stateBottom, env
	}
	if inst.Pseudo == asm.PNone && inst.Op == isa.SW {
		e := env.resolve(inst.RS1, inst.Imm)
		applyEnv(&env, inst)
		return ckState{known: true, e: e}, env
	}
	killState(&st, inst)
	applyEnv(&env, inst)
	return st, env
}

// checkDataflow runs the forward most-recent-check dataflow to a fixed
// point and returns the IN and OUT facts per block. It powers the
// intraprocedural planner; the verifier and the interprocedural planner
// use the set-lattice dataflow in interproc.go instead.
func checkDataflow(g *CFG) (in, out []ckState) {
	nb := len(g.Blocks)
	in = make([]ckState, nb)
	out = make([]ckState, nb)
	for i := range in {
		in[i] = ckState{top: true}
		out[i] = ckState{top: true}
	}
	in[0] = stateBottom

	transfer := func(b *Block, st ckState) ckState {
		var env regEnv
		for i := b.Start; i < b.End; i++ {
			st, env = stepPlan(st, env, g.Fn.Body[i])
		}
		return st
	}

	if g.Irregular {
		// Control flow we cannot model: assume any block can be entered
		// with no facts at all.
		for i := range in {
			in[i] = stateBottom
			out[i] = transfer(g.Blocks[i], stateBottom)
		}
		return in, out
	}

	for changed := true; changed; {
		changed = false
		for _, b := range g.rpo {
			blk := g.Blocks[b]
			st := in[b]
			if b != 0 {
				st = ckState{top: true}
				for _, p := range blk.Preds {
					st = meet(st, out[p])
				}
				if st != in[b] {
					in[b] = st
					changed = true
				}
			}
			no := transfer(blk, st)
			if no != out[b] {
				out[b] = no
				changed = true
			}
		}
	}
	return in, out
}

// hoistSafe reports whether preliminary checks may be inserted before
// the loop's header: every branch to the header must come from inside
// the loop (so the insertion is crossed exactly once, on fall-through
// entry), and the fall-through predecessor must be outside the loop.
func hoistSafe(g *CFG, f *asm.Func, l *Loop) bool {
	h := g.Blocks[l.Header].Start
	// Collect the labels that resolve to the header index.
	headerLabels := make(map[string]bool)
	for name, idx := range f.Labels {
		if idx == h {
			headerLabels[name] = true
		}
	}
	for i, in := range f.Body {
		var label string
		switch {
		case in.Pseudo == asm.PJmp:
			label = in.Label
		case in.Pseudo == asm.PNone && isa.IsBranch(in.Op):
			label = in.Label
		default:
			continue
		}
		if label == "" || !headerLabels[label] {
			continue
		}
		if !l.Blocks[g.BlockOf[i]] {
			return false // entered by branching from outside the loop
		}
	}
	if h == 0 {
		return true // function entry is the preheader
	}
	// The fall-through predecessor must exist and lie outside the loop,
	// otherwise the preliminary checks would execute per iteration.
	prev := g.BlockOf[h-1]
	if l.Blocks[prev] {
		return false
	}
	switch kindOf(f.Body[h-1]) {
	case kindJump, kindRet, kindIrregular:
		return false // no fall-through entry: loop entered only by label
	}
	return true
}

// loopInvariant reports whether the address expression provably has the
// same value on loop entry and at every point inside the loop. Value
// forms (symbol/constant) are invariant by construction; register forms
// require the base register to have no definition inside the loop,
// where calls define everything the convention does not preserve.
func loopInvariant(g *CFG, f *asm.Func, l *Loop, e Expr) bool {
	if e.Kind != ERegister {
		return true
	}
	if e.Reg == isa.R0 {
		return true
	}
	for b := range l.Blocks {
		blk := g.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			in := f.Body[i]
			if kindOf(in) == kindCall || (in.Pseudo == asm.PNone && in.Op == isa.TRAP) {
				if !callPreserved(e.Reg) {
					return false
				}
				continue
			}
			for _, r := range defs(in) {
				if r == e.Reg {
					return false
				}
			}
		}
	}
	return true
}
