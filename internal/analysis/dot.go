package analysis

import (
	"fmt"
	"strings"

	"edb/internal/asm"
)

// DumpDot renders the function's CFG and dominator tree as a Graphviz
// digraph: solid edges are control flow, dashed edges are immediate-
// dominator links, and back edges (the loop-defining edges) are bold.
// Feed the output to `dot -Tsvg` for a picture of what the optimizer
// and verifier reason over.
func DumpDot(g *CFG) string {
	return dumpDot(g, "", nil)
}

// DumpDotAnnotated is DumpDot plus the interprocedural layer's view:
// the graph label carries the function's entry facts (addresses proven
// checked at every call site), and each direct call instruction carries
// its callee's write summary. The rendering is deterministic — block
// and edge order follow the CFG's canonical order, and summaries/entry
// facts print in sorted form.
func DumpDotAnnotated(g *CFG, ip *Interproc) string {
	if ip == nil || g.Fn == nil {
		return DumpDot(g)
	}
	var head strings.Builder
	fmt.Fprintf(&head, "\\nentry checked: %s", exprListString(ip.EntryFacts(g.Fn.Name)))
	if ip.CallGraph != nil && ip.CallGraph.CallsUnknown[g.Fn.Name] {
		head.WriteString("\\ncalls unknown targets")
	}
	annotate := func(in asm.Inst) string {
		if kindOf(in) != kindCall || in.Pseudo != asm.PCall {
			return ""
		}
		s := ip.Summaries[in.Label]
		if s == nil {
			return "unknown callee"
		}
		return s.String()
	}
	return dumpDot(g, head.String(), annotate)
}

// exprListString renders sorted entry facts ("nothing" when empty).
func exprListString(es []Expr) string {
	if len(es) == 0 {
		return "nothing"
	}
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// dumpDot is the shared renderer: headExtra is appended to the graph
// label, and annotate (may be nil) adds a per-instruction comment line.
// With both empty the output is byte-identical to the historical
// DumpDot format, which the counted.dot golden pins.
func dumpDot(g *CFG, headExtra string, annotate func(asm.Inst) string) string {
	var b strings.Builder
	name := "cfg"
	if g.Fn != nil {
		name = g.Fn.Name
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	fmt.Fprintf(&b, "  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	fmt.Fprintf(&b, "  label=\"%s%s\"; labelloc=t;\n", escapeDot("CFG + dominator tree: "+name), headExtra)

	// Labels pointing at each instruction index, for block headers.
	labelsAt := make(map[int][]string)
	if g.Fn != nil {
		for l, idx := range g.Fn.Labels {
			labelsAt[idx] = append(labelsAt[idx], l)
		}
		for _, ls := range labelsAt {
			sortStrings(ls)
		}
	}

	for _, blk := range g.Blocks {
		var lb strings.Builder
		fmt.Fprintf(&lb, "B%d [%d..%d)\\l", blk.ID, blk.Start, blk.End)
		for i := blk.Start; i < blk.End; i++ {
			for _, l := range labelsAt[i] {
				fmt.Fprintf(&lb, "%s:\\l", l)
			}
			fmt.Fprintf(&lb, "  %3d  %s\\l", i, escapeDot(g.Fn.Body[i].String()))
			if annotate != nil {
				if ann := annotate(g.Fn.Body[i]); ann != "" {
					fmt.Fprintf(&lb, "       ^ %s\\l", escapeDot(ann))
				}
			}
		}
		fmt.Fprintf(&b, "  B%d [label=\"%s\"];\n", blk.ID, lb.String())
	}

	// Back edges are bold; everything else solid.
	backEdge := make(map[[2]int]bool)
	for _, l := range g.NaturalLoops() {
		for _, e := range l.BackEdges {
			backEdge[e] = true
		}
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			attr := ""
			if backEdge[[2]int{blk.ID, s}] {
				attr = " [style=bold, color=red]"
			}
			fmt.Fprintf(&b, "  B%d -> B%d%s;\n", blk.ID, s, attr)
		}
	}
	for id, idom := range g.Idom {
		if idom < 0 || idom == id {
			continue
		}
		fmt.Fprintf(&b, "  B%d -> B%d [style=dashed, color=gray, constraint=false];\n", idom, id)
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// DumpCallGraphDot renders the whole-program call graph with one node
// per function, labeled with its write summary and entry facts. Nodes
// are emitted in sorted name order and edges in sorted (caller, callee)
// order, so equal programs always render byte-identically. Functions
// with unresolved (indirect/undefined) call targets get a dashed edge
// to a shared "unknown" sink — the conservative top element.
func DumpCallGraphDot(ip *Interproc) string {
	var b strings.Builder
	b.WriteString("digraph \"callgraph\" {\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	b.WriteString("  label=\"call graph + write summaries\"; labelloc=t;\n")

	names := make([]string, len(ip.CallGraph.Funcs))
	copy(names, ip.CallGraph.Funcs)
	sortStrings(names)

	hasUnknown := false
	for _, fn := range names {
		var lb strings.Builder
		if s := ip.Summaries[fn]; s != nil {
			lb.WriteString(escapeDot(s.String()))
		} else {
			lb.WriteString(escapeDot(fn))
		}
		fmt.Fprintf(&lb, "\\lentry checked: %s\\l", escapeDot(exprListString(ip.EntryFacts(fn))))
		fmt.Fprintf(&b, "  %q [label=\"%s\"];\n", fn, lb.String())
		if ip.CallGraph.CallsUnknown[fn] {
			hasUnknown = true
		}
	}
	if hasUnknown {
		b.WriteString("  \"<unknown>\" [label=\"unknown target\\l(top: may write anything)\\l\", style=dashed];\n")
	}
	for _, fn := range names {
		callees := make([]string, len(ip.CallGraph.Callees[fn]))
		copy(callees, ip.CallGraph.Callees[fn])
		sortStrings(callees)
		for _, c := range callees {
			fmt.Fprintf(&b, "  %q -> %q;\n", fn, c)
		}
		if ip.CallGraph.CallsUnknown[fn] {
			fmt.Fprintf(&b, "  %q -> \"<unknown>\" [style=dashed];\n", fn)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\"", "\\\"")
}

// sortStrings is a tiny insertion sort (avoids pulling in sort for two
// or three labels).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
