package analysis

import (
	"fmt"
	"strings"
)

// DumpDot renders the function's CFG and dominator tree as a Graphviz
// digraph: solid edges are control flow, dashed edges are immediate-
// dominator links, and back edges (the loop-defining edges) are bold.
// Feed the output to `dot -Tsvg` for a picture of what the optimizer
// and verifier reason over.
func DumpDot(g *CFG) string {
	var b strings.Builder
	name := "cfg"
	if g.Fn != nil {
		name = g.Fn.Name
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	fmt.Fprintf(&b, "  node [shape=box, fontname=\"monospace\", fontsize=10];\n")
	fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", "CFG + dominator tree: "+name)

	// Labels pointing at each instruction index, for block headers.
	labelsAt := make(map[int][]string)
	if g.Fn != nil {
		for l, idx := range g.Fn.Labels {
			labelsAt[idx] = append(labelsAt[idx], l)
		}
		for _, ls := range labelsAt {
			sortStrings(ls)
		}
	}

	for _, blk := range g.Blocks {
		var lb strings.Builder
		fmt.Fprintf(&lb, "B%d [%d..%d)\\l", blk.ID, blk.Start, blk.End)
		for i := blk.Start; i < blk.End; i++ {
			for _, l := range labelsAt[i] {
				fmt.Fprintf(&lb, "%s:\\l", l)
			}
			fmt.Fprintf(&lb, "  %3d  %s\\l", i, escapeDot(g.Fn.Body[i].String()))
		}
		fmt.Fprintf(&b, "  B%d [label=\"%s\"];\n", blk.ID, lb.String())
	}

	// Back edges are bold; everything else solid.
	backEdge := make(map[[2]int]bool)
	for _, l := range g.NaturalLoops() {
		for _, e := range l.BackEdges {
			backEdge[e] = true
		}
	}
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			attr := ""
			if backEdge[[2]int{blk.ID, s}] {
				attr = " [style=bold, color=red]"
			}
			fmt.Fprintf(&b, "  B%d -> B%d%s;\n", blk.ID, s, attr)
		}
	}
	for id, idom := range g.Idom {
		if idom < 0 || idom == id {
			continue
		}
		fmt.Fprintf(&b, "  B%d -> B%d [style=dashed, color=gray, constraint=false];\n", idom, id)
	}
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\"", "\\\"")
}

// sortStrings is a tiny insertion sort (avoids pulling in sort for two
// or three labels).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
