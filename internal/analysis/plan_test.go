package analysis

import (
	"testing"

	"edb/internal/asm"
	"edb/internal/isa"
)

func planOf(f *asm.Func) *FuncPlan { return planFunc(f) }

func TestPlanElidesRepeatedStore(t *testing.T) {
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Sw(isa.Reg(10), isa.FP, -4)) // first: full check
		f.Emit(asm.Sw(isa.Reg(11), isa.FP, -4)) // same address: elided
		f.Emit(asm.Sw(isa.Reg(11), isa.FP, -8)) // different offset: full
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	if got := fp.ClassOf(0); got != CheckFull {
		t.Errorf("store 0 = %v, want full", got)
	}
	if got := fp.ClassOf(1); got != CheckElided {
		t.Errorf("store 1 = %v, want elided", got)
	}
	if got := fp.ClassOf(2); got != CheckFull {
		t.Errorf("store 2 = %v, want full", got)
	}
}

func TestPlanKillsOnBaseRedefinition(t *testing.T) {
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0))
		f.Emit(asm.I(isa.ADDI, isa.Reg(12), isa.Reg(12), 4)) // kills r12 facts
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0))
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	if got := fp.ClassOf(2); got != CheckFull {
		t.Errorf("store after base redefinition = %v, want full", got)
	}
}

func TestPlanAddiPropagation(t *testing.T) {
	// The address environment resolves la + addi chains: g+4 stored via
	// two different registers is provably the same address.
	f := fn(func(f *asm.Func) {
		f.Emit(asm.La(isa.Reg(12), "g", 0))
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 4))          // g+4
		f.Emit(asm.I(isa.ADDI, isa.Reg(13), isa.Reg(12), 4)) // r13 = g+4
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(13), 0))          // g+4 again
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	if got := fp.ClassOf(3); got != CheckElided {
		t.Errorf("provably-equal rewritten base = %v, want elided", got)
	}

	// Raw register arithmetic on an unknown base is NOT propagated: the
	// conservative plan keeps the full check.
	f2 := fn(func(f *asm.Func) {
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 4))
		f.Emit(asm.I(isa.ADDI, isa.Reg(13), isa.Reg(12), 4))
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(13), 0))
		f.Emit(asm.Ret())
	})
	if got := planOf(f2).ClassOf(2); got != CheckFull {
		t.Errorf("unknown rewritten base = %v, want full", got)
	}
}

func TestPlanCallIsBarrier(t *testing.T) {
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Sw(isa.Reg(10), isa.FP, -4))
		f.Emit(asm.Call("other")) // may install/remove monitors
		f.Emit(asm.Sw(isa.Reg(11), isa.FP, -4))
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	if got := fp.ClassOf(2); got != CheckFull {
		t.Errorf("store after call = %v, want full", got)
	}
}

func TestPlanDiamondMeet(t *testing.T) {
	// Both arms of the diamond store to fp-4; the join's store is covered
	// on every path and elides.
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Br(isa.BEQ, isa.Reg(10), isa.R0, "else"))
		f.Emit(asm.Sw(isa.Reg(11), isa.FP, -4))
		f.Emit(asm.Jmp("join"))
		f.Mark("else")
		f.Emit(asm.Sw(isa.Reg(12), isa.FP, -4))
		f.Mark("join")
		f.Emit(asm.Sw(isa.Reg(13), isa.FP, -4))
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	if got := fp.ClassOf(4); got != CheckElided {
		t.Errorf("join store = %v, want elided (covered on both arms)", got)
	}

	// Make one arm store elsewhere: the join store no longer elides.
	f2 := fn(func(f *asm.Func) {
		f.Emit(asm.Br(isa.BEQ, isa.Reg(10), isa.R0, "else"))
		f.Emit(asm.Sw(isa.Reg(11), isa.FP, -8))
		f.Emit(asm.Jmp("join"))
		f.Mark("else")
		f.Emit(asm.Sw(isa.Reg(12), isa.FP, -4))
		f.Mark("join")
		f.Emit(asm.Sw(isa.Reg(13), isa.FP, -4))
		f.Emit(asm.Ret())
	})
	if got := planOf(f2).ClassOf(4); got != CheckFull {
		t.Errorf("join store with mismatched arms = %v, want full", got)
	}
}

func TestPlanLoopHoist(t *testing.T) {
	fp := planOf(counted())
	// The in-loop store (body index 4) downgrades to the fast check...
	if got := fp.ClassOf(4); got != CheckFast {
		t.Errorf("in-loop store = %v, want fast", got)
	}
	// ...and one preliminary check of the loop-invariant symbol address
	// is hoisted to the header (body index 2).
	if len(fp.Hoists) != 1 {
		t.Fatalf("hoists = %+v, want 1", fp.Hoists)
	}
	h := fp.Hoists[0]
	if h.InsertAt != 2 {
		t.Errorf("hoist at %d, want 2 (loop header)", h.InsertAt)
	}
	want := Expr{Kind: ESymbol, Sym: "g", Off: 0}
	if len(h.Exprs) != 1 || h.Exprs[0] != want {
		t.Errorf("hoisted exprs = %v, want [%v]", h.Exprs, want)
	}
}

func TestPlanLoopVariantAddressNotHoisted(t *testing.T) {
	// The store base advances each iteration: not loop-invariant, so the
	// check stays full and nothing is hoisted.
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Li(isa.Reg(10), 0))
		f.Emit(asm.Li(isa.Reg(11), 10))
		f.Emit(asm.La(isa.Reg(12), "g", 0))
		f.Mark("head")
		f.Emit(asm.Br(isa.BGE, isa.Reg(10), isa.Reg(11), "done"))
		f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0))
		f.Emit(asm.I(isa.ADDI, isa.Reg(12), isa.Reg(12), 4)) // pointer walks
		f.Emit(asm.I(isa.ADDI, isa.Reg(10), isa.Reg(10), 1))
		f.Emit(asm.Jmp("head"))
		f.Mark("done")
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	if got := fp.ClassOf(4); got != CheckFull {
		t.Errorf("loop-variant store = %v, want full", got)
	}
	if len(fp.Hoists) != 0 {
		t.Errorf("hoists = %+v, want none", fp.Hoists)
	}
}

func TestPlanIrregularSkipsOptimization(t *testing.T) {
	f := fn(func(f *asm.Func) {
		f.Emit(asm.I(isa.BEQ, isa.Reg(10), isa.R0, 2)) // raw-immediate branch
		f.Emit(asm.Sw(isa.Reg(10), isa.FP, -4))
		f.Emit(asm.Sw(isa.Reg(11), isa.FP, -4))
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	for i := 1; i <= 2; i++ {
		if got := fp.ClassOf(i); got != CheckFull {
			t.Errorf("irregular store %d = %v, want full", i, got)
		}
	}
	if len(fp.Hoists) != 0 {
		t.Errorf("irregular function must not hoist: %+v", fp.Hoists)
	}
}

func TestPlanHoistCapPerLoop(t *testing.T) {
	// Six distinct loop-invariant store addresses in one loop: only
	// maxHoistsPerLoop (4) may be hoisted; the rest stay full.
	f := fn(func(f *asm.Func) {
		f.Emit(asm.Li(isa.Reg(10), 0))
		f.Emit(asm.Li(isa.Reg(11), 10))
		f.Mark("head")
		f.Emit(asm.Br(isa.BGE, isa.Reg(10), isa.Reg(11), "done"))
		for i := 0; i < 6; i++ {
			f.Emit(asm.La(isa.Reg(12), "g", int32(4*i)))
			f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0))
		}
		f.Emit(asm.I(isa.ADDI, isa.Reg(10), isa.Reg(10), 1))
		f.Emit(asm.Jmp("head"))
		f.Mark("done")
		f.Emit(asm.Ret())
	})
	fp := planOf(f)
	fast, full := 0, 0
	for i, in := range f.Body {
		if in.Pseudo == asm.PNone && in.Op == isa.SW {
			switch fp.ClassOf(i) {
			case CheckFast:
				fast++
			case CheckFull:
				full++
			}
		}
	}
	if fast != maxHoistsPerLoop || full != 6-maxHoistsPerLoop {
		t.Errorf("fast = %d full = %d, want %d/%d", fast, full,
			maxHoistsPerLoop, 6-maxHoistsPerLoop)
	}
	if len(fp.Hoists) != 1 || len(fp.Hoists[0].Exprs) != maxHoistsPerLoop {
		t.Errorf("hoists = %+v", fp.Hoists)
	}
}
