package analysis_test

import (
	"strings"
	"testing"

	"edb/internal/analysis"
	"edb/internal/asm"
	"edb/internal/core/codepatch"
	"edb/internal/core/trappatch"
	"edb/internal/isa"
	"edb/internal/minic"
	"edb/internal/progs"
)

// TestVerifyAllWorkloads is the acceptance gate: every benchmark
// workload, patched by both the unoptimized and the optimized CodePatch
// patcher, must verify sound — and TrapPatch must leave no stores.
func TestVerifyAllWorkloads(t *testing.T) {
	for _, name := range progs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := progs.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			compile := func() *asm.Program {
				prog, err := minic.Compile(p.Source)
				if err != nil {
					t.Fatal(err)
				}
				return prog
			}

			prog := compile()
			if _, err := codepatch.Patch(prog); err != nil {
				t.Fatal(err)
			}
			if vs := analysis.VerifyPatched(prog); len(vs) != 0 {
				t.Errorf("CP image has %d violations, first: %s", len(vs), vs[0])
			}

			prog = compile()
			if _, err := codepatch.PatchWithOptions(prog, codepatch.PatchOptions{Optimize: true}); err != nil {
				t.Fatal(err)
			}
			if vs := analysis.VerifyPatched(prog); len(vs) != 0 {
				t.Errorf("CP-opt image has %d violations, first: %s", len(vs), vs[0])
			}

			prog = compile()
			tp, err := trappatch.Patch(prog)
			if err != nil {
				t.Fatal(err)
			}
			if vs := analysis.VerifyTrapPatched(prog, tp.Table); len(vs) != 0 {
				t.Errorf("TP image has %d violations, first: %s", len(vs), vs[0])
			}
		})
	}
}

const verifySrc = `
int g = 0;
int bump(int v) { g = g + v; return g; }
int main() {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 8; i = i + 1) { acc = acc + bump(i); }
	print(acc);
	return 0;
}
`

func optPatched(t *testing.T) *asm.Program {
	t.Helper()
	prog, err := minic.Compile(verifySrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codepatch.PatchWithOptions(prog, codepatch.PatchOptions{Optimize: true}); err != nil {
		t.Fatal(err)
	}
	if vs := analysis.VerifyPatched(prog); len(vs) != 0 {
		t.Fatalf("pristine patch must verify, got: %v", vs)
	}
	return prog
}

// findPair locates one check pair (AT2 materialisation + check call) in
// a non-stub function and returns the function and the pair index.
func findPair(t *testing.T, p *asm.Program) (*asm.Func, int) {
	t.Helper()
	for fi, f := range p.Funcs {
		if fi == 0 {
			continue // stub
		}
		for i := 0; i+1 < len(f.Body); i++ {
			in, next := f.Body[i], f.Body[i+1]
			matAT2 := (in.Pseudo == asm.PNone && in.Op == isa.ADDI && in.RD == isa.AT2) ||
				((in.Pseudo == asm.PLa || in.Pseudo == asm.PLi) && in.RD == isa.AT2)
			if matAT2 && next.Pseudo == asm.PNone && next.Op == isa.JALR &&
				next.RD == isa.PLink && next.RS1 == isa.R0 {
				return f, i
			}
		}
	}
	t.Fatal("no check pair found in patched program")
	return nil, 0
}

// TestVerifyCorruptedAddress is the required negative test: skew the
// checked address so it no longer matches the guarded store, and the
// verifier must object.
func TestVerifyCorruptedAddress(t *testing.T) {
	prog := optPatched(t)
	f, i := findPair(t, prog)
	f.Body[i].Imm += 4 // check a different word than the store writes
	vs := analysis.VerifyPatched(prog)
	if len(vs) == 0 {
		t.Fatal("corrupted check address must fail verification")
	}
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "not covered by a dominating matching check") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an uncovered-store violation, got: %v", vs)
	}
}

// TestVerifyCorruptedStubTarget redirects one check call away from the
// stub entries.
func TestVerifyCorruptedStubTarget(t *testing.T) {
	prog := optPatched(t)
	f, i := findPair(t, prog)
	f.Body[i+1].Imm += 12 // past the 3-word stub
	vs := analysis.VerifyPatched(prog)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "not a stub entry") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a stub-target violation, got: %v", vs)
	}
}

// TestVerifyReservedRegisterClobber turns a program instruction into a
// write of AT2 that is not part of a check pair.
func TestVerifyReservedRegisterClobber(t *testing.T) {
	prog := optPatched(t)
	// Find a plain ALU instruction in a non-stub function and retarget
	// its destination at AT2 (without a following check call).
	for fi, f := range prog.Funcs {
		if fi == 0 {
			continue
		}
		for i, in := range f.Body {
			if in.Pseudo != asm.PNone || in.Op != isa.ADDI || in.RD == isa.AT2 {
				continue
			}
			if i+1 < len(f.Body) {
				next := f.Body[i+1]
				if next.Pseudo == asm.PNone && next.Op == isa.JALR && next.RD == isa.PLink {
					continue // would form a pair
				}
			}
			f.Body[i].RD = isa.AT2
			vs := analysis.VerifyPatched(prog)
			for _, v := range vs {
				if strings.Contains(v.Msg, "reserved register") {
					return
				}
			}
			t.Fatalf("expected a reserved-register violation, got: %v", vs)
		}
	}
	t.Fatal("no suitable instruction to corrupt")
}

// TestVerifyUnpatchedProgramFails: a never-patched program must fail —
// no stub, and every store uncovered.
func TestVerifyUnpatchedProgramFails(t *testing.T) {
	prog, err := minic.Compile(verifySrc)
	if err != nil {
		t.Fatal(err)
	}
	vs := analysis.VerifyPatched(prog)
	if len(vs) == 0 {
		t.Fatal("unpatched program must not verify")
	}
	if !strings.Contains(vs[0].Msg, "first function must be") {
		t.Errorf("first violation should flag the missing stub: %s", vs[0])
	}
}

// TestVerifyTrapPatchedNegative: a lingering store and an out-of-range
// trap code must both be flagged.
func TestVerifyTrapPatchedNegative(t *testing.T) {
	prog, err := minic.Compile(verifySrc)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := trappatch.Patch(prog)
	if err != nil {
		t.Fatal(err)
	}
	if vs := analysis.VerifyTrapPatched(prog, tp.Table); len(vs) != 0 {
		t.Fatalf("pristine trap patch must verify, got: %v", vs)
	}
	// Re-introduce a store at the end of a function body (appending does
	// not disturb label indices).
	f := prog.Funcs[len(prog.Funcs)-1]
	f.Emit(asm.Sw(isa.Reg(10), isa.FP, -4))
	vs := analysis.VerifyTrapPatched(prog, tp.Table)
	foundStore := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "unpatched store remains") {
			foundStore = true
		}
	}
	if !foundStore {
		t.Errorf("expected an unpatched-store violation, got: %v", vs)
	}
	// Out-of-range trap code.
	f.Emit(asm.I(isa.TRAP, 0, 0, int32(len(tp.Table))))
	vs = analysis.VerifyTrapPatched(prog, tp.Table)
	foundRange := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "outside side table") {
			foundRange = true
		}
	}
	if !foundRange {
		t.Errorf("expected an out-of-range trap violation, got: %v", vs)
	}
}

// TestCheckFuncNameMatchesCodepatch pins the duplicated constant to the
// real one (they live in different packages to avoid an import cycle).
func TestCheckFuncNameMatchesCodepatch(t *testing.T) {
	prog, err := minic.Compile(verifySrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codepatch.Patch(prog); err != nil {
		t.Fatal(err)
	}
	if prog.Funcs[0].Name != codepatch.CheckFuncName {
		t.Fatalf("stub is %q, want %q", prog.Funcs[0].Name, codepatch.CheckFuncName)
	}
	// VerifyPatched accepting the image proves analysis.checkFuncName
	// equals codepatch.CheckFuncName.
	if vs := analysis.VerifyPatched(prog); len(vs) != 0 {
		t.Fatalf("verify failed: %v", vs)
	}
}

// interVerifySrc has a quiet helper between two stores of the same
// global, so the interprocedural planner elides across the call and the
// dependence map carries summary/check/entry facts worth corrupting.
const interVerifySrc = `
int g = 0;
int h = 0;
int quiet(int a) {
	int t;
	t = a + 1;
	return t * 2;
}
int main() {
	int i;
	int acc;
	acc = 0;
	g = 1;
	acc = quiet(acc);
	g = g + 1;
	for (i = 0; i < 8; i = i + 1) { h = h + i; acc = acc + quiet(i); }
	print(acc);
	return 0;
}
`

// optPatchedWithDeps builds an interprocedurally optimized patch and its
// dependence map, asserting the pristine pair verifies.
func optPatchedWithDeps(t *testing.T) (*asm.Program, *analysis.DepMap) {
	t.Helper()
	prog, err := minic.Compile(interVerifySrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := codepatch.PatchWithOptions(prog, codepatch.PatchOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EliminatedChecks <= res.EliminatedIntra {
		t.Fatalf("interproc must elide more than intraproc here (got %d vs %d)",
			res.EliminatedChecks, res.EliminatedIntra)
	}
	if res.DepMap == nil || len(res.DepMap.Sites) == 0 {
		t.Fatal("optimized patch must carry a dependence map")
	}
	if vs := analysis.VerifyPatchedWithDeps(prog, res.DepMap); len(vs) != 0 {
		t.Fatalf("pristine patch+map must verify, got: %v", vs)
	}
	return prog, res.DepMap
}

// reEncode round-trips the map through its serialized form, as the
// future re-patcher will receive it.
func reEncode(t *testing.T, dm *analysis.DepMap) *analysis.DepMap {
	t.Helper()
	b, err := dm.Encode()
	if err != nil {
		t.Fatal(err)
	}
	out, err := analysis.ParseDepMap(b)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestVerifyDepMapCorruption is the required negative test: every way of
// corrupting the serialized dependence map — dropping a site, skewing an
// expression, retargeting a dependency, lying about a class — must be
// rejected by VerifyPatchedWithDeps.
func TestVerifyDepMapCorruption(t *testing.T) {
	prog, dm := optPatchedWithDeps(t)

	// Pick the elided store of the global g: main's own summary writes g,
	// so a bogus "summary main" dep on this site is provably false.
	elidedAt := -1
	for i, s := range dm.Sites {
		if s.Class == "elided" && s.Expr == "g+0" {
			elidedAt = i
			break
		}
	}
	if elidedAt < 0 {
		t.Fatal("no elided g+0 site in the dependence map")
	}

	corrupt := func(name string, mutate func(c *analysis.DepMap), wantMsg string) {
		t.Run(name, func(t *testing.T) {
			c := reEncode(t, dm)
			mutate(c)
			vs := analysis.VerifyPatchedWithDeps(prog, c)
			if len(vs) == 0 {
				t.Fatal("corrupted dependence map must not verify")
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.Msg, wantMsg) {
					found = true
				}
			}
			if !found {
				t.Errorf("want a violation containing %q, got: %v", wantMsg, vs)
			}
		})
	}

	corrupt("drop-site", func(c *analysis.DepMap) {
		c.Sites = append(c.Sites[:elidedAt], c.Sites[elidedAt+1:]...)
	}, "missing a site")
	corrupt("skew-expr", func(c *analysis.DepMap) {
		c.Sites[elidedAt].Expr = "h+0"
	}, "dependence map")
	corrupt("skew-index", func(c *analysis.DepMap) {
		c.Sites[elidedAt].Index += 1
	}, "dependence map")
	corrupt("wrong-func", func(c *analysis.DepMap) {
		c.Sites[elidedAt].Func = "nosuchfunc"
	}, "dependence map")
	corrupt("wrong-class", func(c *analysis.DepMap) {
		c.Sites[elidedAt].Class = "fast"
	}, "dependence map")
	corrupt("bogus-class", func(c *analysis.DepMap) {
		c.Sites[elidedAt].Class = "teleported"
	}, "unknown class")
	corrupt("retarget-check-dep", func(c *analysis.DepMap) {
		s := &c.Sites[elidedAt]
		s.Deps = append(s.Deps, analysis.Dep{Kind: "check", Func: s.Func, Index: 0})
	}, "does not check")
	corrupt("bogus-summary-dep", func(c *analysis.DepMap) {
		s := &c.Sites[elidedAt]
		s.Deps = append(s.Deps, analysis.Dep{Kind: "summary", Func: "main"})
	}, "summary dep")
	corrupt("bogus-entry-dep", func(c *analysis.DepMap) {
		s := &c.Sites[elidedAt]
		s.Deps = append(s.Deps, analysis.Dep{Kind: "entry", Func: s.Func})
	}, "entry dep")
	corrupt("bogus-dep-kind", func(c *analysis.DepMap) {
		s := &c.Sites[elidedAt]
		s.Deps = append(s.Deps, analysis.Dep{Kind: "vibes", Func: s.Func})
	}, "unknown kind")
}

// TestVerifyWithDepsWorkloads: the shipped dependence map of every
// workload's interproc patch validates against the patched image.
func TestVerifyWithDepsWorkloads(t *testing.T) {
	for _, name := range progs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := progs.ByName(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := minic.Compile(p.Source)
			if err != nil {
				t.Fatal(err)
			}
			res, err := codepatch.PatchWithOptions(prog, codepatch.PatchOptions{Optimize: true})
			if err != nil {
				t.Fatal(err)
			}
			dm := reEncode(t, res.DepMap)
			if vs := analysis.VerifyPatchedWithDeps(prog, dm); len(vs) != 0 {
				t.Errorf("%d violations, first: %s", len(vs), vs[0])
			}
			if res.EliminatedChecks < res.EliminatedIntra {
				t.Errorf("interproc elides %d < intraproc %d", res.EliminatedChecks, res.EliminatedIntra)
			}
		})
	}
}
