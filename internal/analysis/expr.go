package analysis

import (
	"fmt"

	"edb/internal/asm"
	"edb/internal/isa"
)

// ExprKind discriminates the forms of a symbolic address expression.
type ExprKind int

// Address-expression forms. ERegister addresses are register-relative
// and are invalidated when the base register is redefined; ESymbol and
// EConst addresses denote run-time *values* and survive register
// redefinition (the paper's "provably-equal address expression" extends
// to re-materialised globals: la at, g; sw …0(at) twice computes the
// same address even though at is rewritten in between).
const (
	ERegister ExprKind = iota
	ESymbol
	EConst
)

// Expr is a symbolic store-target address: base register + offset,
// optionally resolved to a data symbol + offset or an absolute constant.
type Expr struct {
	Kind ExprKind
	Reg  isa.Reg // ERegister base
	Sym  string  // ESymbol base
	Off  int64   // byte offset (EConst: the absolute address itself)
}

// String renders the expression for diagnostics.
func (e Expr) String() string {
	switch e.Kind {
	case ESymbol:
		return fmt.Sprintf("%s+%d", e.Sym, e.Off)
	case EConst:
		return fmt.Sprintf("%#x", uint32(e.Off))
	default:
		return fmt.Sprintf("%d(r%d)", e.Off, e.Reg)
	}
}

// regVal is the block-local abstract value of one register: unknown, a
// data-symbol address, or a constant. It is populated by the pseudo
// loads (la/li) and propagated through addi, which is how the compiler
// materialises and adjusts addresses.
type regVal struct {
	kind  ExprKind // ESymbol or EConst; zero value unused
	known bool
	sym   string
	off   int64
}

// regEnv is the block-local register environment. It deliberately
// resets at block boundaries: a cross-block value-numbering would be
// sounder-complete but the compiler materialises addresses immediately
// before use, so the local window captures the patterns that matter.
type regEnv [isa.NumRegs]regVal

func (env *regEnv) reset() { *env = regEnv{} }

func (env *regEnv) kill(r isa.Reg) {
	if r != isa.R0 {
		env[r] = regVal{}
	}
}

// resolve turns (base, imm) into the most precise address expression
// the environment supports.
func (env *regEnv) resolve(base isa.Reg, imm int32) Expr {
	if base == isa.R0 {
		return Expr{Kind: EConst, Off: int64(imm)}
	}
	if v := env[base]; v.known {
		switch v.kind {
		case ESymbol:
			return Expr{Kind: ESymbol, Sym: v.sym, Off: v.off + int64(imm)}
		case EConst:
			return Expr{Kind: EConst, Off: v.off + int64(imm)}
		}
	}
	return Expr{Kind: ERegister, Reg: base, Off: int64(imm)}
}

// callPreserved is the register set the calling convention preserves
// across calls: everything else must be assumed clobbered (the callee's
// prologue/epilogue restore SP and FP; GP is reserved; R0 is wired).
func callPreserved(r isa.Reg) bool {
	switch r {
	case isa.R0, isa.SP, isa.FP, isa.GP:
		return true
	}
	return false
}

// defs returns the registers an instruction writes, excluding R0.
// Calls are handled separately (they clobber everything not preserved).
func defs(in asm.Inst) []isa.Reg {
	one := func(r isa.Reg) []isa.Reg {
		if r == isa.R0 {
			return nil
		}
		return []isa.Reg{r}
	}
	switch in.Pseudo {
	case asm.PLi, asm.PLa:
		return one(in.RD)
	case asm.PCall, asm.PRet, asm.PJmp:
		return nil
	}
	switch {
	case in.Op == isa.SW, isa.IsBranch(in.Op):
		return nil // SW reads RD (source value); branches compare RD, RS1
	case in.Op == isa.SYS:
		return one(isa.RV)
	case in.Op == isa.TRAP:
		return nil
	case in.Op == isa.JAL:
		return one(isa.RA)
	case in.Op == isa.JALR:
		return one(in.RD)
	default:
		return one(in.RD)
	}
}

// uses returns the registers an instruction reads.
func uses(in asm.Inst) []isa.Reg {
	switch in.Pseudo {
	case asm.PLi, asm.PLa, asm.PCall, asm.PJmp:
		return nil
	case asm.PRet:
		return []isa.Reg{isa.RA}
	}
	switch {
	case in.Op == isa.SW:
		return []isa.Reg{in.RD, in.RS1} // value, base
	case isa.IsBranch(in.Op):
		return []isa.Reg{in.RD, in.RS1}
	case in.Op == isa.LUI, in.Op == isa.JAL, in.Op == isa.SYS, in.Op == isa.TRAP:
		return nil
	case in.Op == isa.JALR:
		return []isa.Reg{in.RS1}
	case isa.ClassOf(in.Op) == isa.ClassR:
		return []isa.Reg{in.RS1, in.RS2}
	default: // I-type ALU, LW
		return []isa.Reg{in.RS1}
	}
}

// applyEnv updates the block-local register environment for one
// instruction (after any reads of the old environment).
func applyEnv(env *regEnv, in asm.Inst) {
	switch in.Pseudo {
	case asm.PLi:
		if in.RD != isa.R0 {
			env[in.RD] = regVal{kind: EConst, known: true, off: int64(in.Imm)}
		}
		return
	case asm.PLa:
		if in.RD != isa.R0 {
			env[in.RD] = regVal{kind: ESymbol, known: true, sym: in.Sym, off: int64(in.Imm)}
		}
		return
	case asm.PCall:
		env.reset()
		return
	case asm.PRet, asm.PJmp:
		return
	}
	switch in.Op {
	case isa.JAL:
		env.reset()
		return
	case isa.JALR:
		if kindOf(in) == kindCall {
			env.reset()
			return
		}
		env.kill(in.RD)
		return
	case isa.ADDI:
		// Propagate address arithmetic: addi rd, rs1, imm keeps rd
		// resolvable when rs1 is.
		if in.RD == isa.R0 {
			return
		}
		if v := env[in.RS1]; v.known {
			v.off += int64(in.Imm)
			env[in.RD] = v
			return
		}
		if in.RS1 == isa.R0 {
			env[in.RD] = regVal{kind: EConst, known: true, off: int64(in.Imm)}
			return
		}
		env.kill(in.RD)
		return
	}
	for _, r := range defs(in) {
		env.kill(r)
	}
}

// ckState is the dataflow fact flowing through the check-elimination
// and verification analyses: the address expression of the most recent
// check (equivalently, store target) on every path to this point.
// top marks unvisited edges (meet identity); !known is ⊥.
type ckState struct {
	top   bool
	known bool
	e     Expr
}

var stateBottom = ckState{}

func meet(a, b ckState) ckState {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	if a.known && b.known && a.e == b.e {
		return a
	}
	return stateBottom
}

// killState invalidates the fact when an instruction redefines its base
// register; value-form facts (symbol/constant) survive register defs.
func killState(st *ckState, in asm.Inst) {
	if !st.known || st.e.Kind != ERegister {
		return
	}
	for _, r := range defs(in) {
		if r == st.e.Reg {
			*st = stateBottom
			return
		}
	}
}

// isBarrier reports whether the instruction invalidates the most-recent-
// check fact entirely: calls (the callee runs its own checks, resetting
// the runtime's last-check record) and traps.
func isBarrier(in asm.Inst) bool {
	switch kindOf(in) {
	case kindCall:
		return true
	}
	return in.Pseudo == asm.PNone && in.Op == isa.TRAP
}
