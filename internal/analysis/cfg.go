// Package analysis is the static-analysis subsystem over the symbolic
// assembly layer (internal/asm) and the ISA (internal/isa). It provides
// per-function control-flow graphs, dominator trees (Cooper–Harvey–
// Kennedy), natural-loop detection, and an available-address-expression
// dataflow over (base register, offset) store targets.
//
// Two clients consume it:
//
//   - The CodePatch optimizer (internal/core/codepatch, Optimize mode)
//     uses PlanChecks to eliminate per-store checks that a dominating
//     check of a provably-equal address already covers, and to hoist a
//     preliminary check of a loop-invariant address into the loop
//     preheader — the compile-time optimization §9 of the paper sketches
//     as future work.
//
//   - The patch-soundness verifier (VerifyPatched, VerifyTrapPatched)
//     proves a patched program honest: every store dominated by a
//     matching check, reserved registers never touched by program code,
//     the check stub first in the image.
package analysis

import (
	"edb/internal/asm"
	"edb/internal/isa"
)

// Block is one basic block: the half-open range [Start, End) of body
// instruction indices, with CFG edges by block ID.
type Block struct {
	ID         int
	Start, End int
	Succs      []int
	Preds      []int
}

// CFG is the control-flow graph of one function, plus its dominator
// tree. Block 0 is the entry block (it contains body index 0).
type CFG struct {
	Fn     *asm.Func
	Blocks []*Block
	// BlockOf maps a body index to the ID of its containing block.
	BlockOf []int
	// Idom is the immediate dominator of each block (Idom[entry] ==
	// entry; -1 for unreachable blocks).
	Idom []int
	// Irregular is set when the function contains control flow the
	// analysis cannot model (raw-immediate branches, indirect jumps).
	// Clients must treat every block as reachable from anywhere: the
	// planner skips optimization, the verifier drops all cross-block
	// facts.
	Irregular bool

	// rpo is a reverse-postorder traversal of the reachable blocks.
	rpo []int
}

// instKind classifies an instruction's effect on control flow.
type instKind int

const (
	kindPlain     instKind = iota
	kindCall               // PCall, JAL, non-return/non-check JALR
	kindCheckCall          // jalr plink, r0, imm — a patch-inserted check
	kindCondBr             // conditional branch with a label target
	kindJump               // PJmp
	kindRet                // PRet or jalr r0, ra, 0
	kindIrregular          // control flow we cannot model
)

func kindOf(in asm.Inst) instKind {
	switch in.Pseudo {
	case asm.PCall:
		return kindCall
	case asm.PRet:
		return kindRet
	case asm.PJmp:
		return kindJump
	case asm.PNone:
		switch {
		case isa.IsBranch(in.Op):
			if in.Label == "" {
				return kindIrregular // raw-immediate branch target
			}
			return kindCondBr
		case in.Op == isa.JAL:
			return kindCall
		case in.Op == isa.JALR:
			switch {
			case in.RD == isa.R0 && in.RS1 == isa.RA && in.Imm == 0:
				return kindRet
			case in.RD == isa.PLink && in.RS1 == isa.R0:
				return kindCheckCall
			default:
				return kindIrregular // indirect jump we cannot resolve
			}
		}
	}
	return kindPlain
}

// isTerminator reports whether the instruction ends a basic block.
func isTerminator(k instKind) bool {
	switch k {
	case kindCondBr, kindJump, kindRet, kindIrregular:
		return true
	}
	return false
}

// BuildCFG constructs the control-flow graph and dominator tree of f.
func BuildCFG(f *asm.Func) *CFG {
	g := &CFG{Fn: f}
	n := len(f.Body)
	if n == 0 {
		return g
	}

	// Leaders: index 0, label targets, and successors of terminators.
	leader := make([]bool, n)
	leader[0] = true
	for _, idx := range f.Labels {
		if idx >= 0 && idx < n {
			leader[idx] = true
		}
	}
	for i, in := range f.Body {
		k := kindOf(in)
		if k == kindIrregular {
			g.Irregular = true
		}
		if isTerminator(k) && i+1 < n {
			leader[i+1] = true
		}
	}

	// Carve blocks.
	g.BlockOf = make([]int, n)
	for i := 0; i < n; {
		b := &Block{ID: len(g.Blocks), Start: i}
		j := i
		for j < n {
			g.BlockOf[j] = b.ID
			k := kindOf(f.Body[j])
			j++
			if isTerminator(k) || (j < n && leader[j]) {
				break
			}
		}
		b.End = j
		g.Blocks = append(g.Blocks, b)
		i = j
	}

	// Edges.
	blockAt := func(idx int) (int, bool) {
		if idx < 0 || idx >= n {
			return 0, false // end-of-body label: falls out of the function
		}
		return g.BlockOf[idx], true
	}
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for _, b := range g.Blocks {
		last := f.Body[b.End-1]
		k := kindOf(last)
		switch k {
		case kindJump, kindCondBr:
			if idx, ok := f.Labels[last.Label]; ok {
				if t, ok := blockAt(idx); ok {
					addEdge(b.ID, t)
				}
			} else {
				g.Irregular = true
			}
			if k == kindCondBr && b.End < n {
				addEdge(b.ID, g.BlockOf[b.End])
			}
		case kindRet, kindIrregular:
			// No modeled successors.
		default:
			if b.End < n {
				addEdge(b.ID, g.BlockOf[b.End])
			}
		}
	}

	g.computeRPO()
	g.computeDominators()
	return g
}

// computeRPO records a reverse-postorder over reachable blocks.
func (g *CFG) computeRPO() {
	visited := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if len(g.Blocks) > 0 {
		dfs(0)
	}
	g.rpo = make([]int, len(post))
	for i, b := range post {
		g.rpo[len(post)-1-i] = b
	}
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm
// ("A Simple, Fast Dominance Algorithm"): intersect along predecessors
// in reverse postorder until a fixed point.
func (g *CFG) computeDominators() {
	nb := len(g.Blocks)
	g.Idom = make([]int, nb)
	for i := range g.Idom {
		g.Idom[i] = -1
	}
	if nb == 0 {
		return
	}
	// rpoIndex orders blocks for the intersect walk.
	rpoIndex := make([]int, nb)
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, b := range g.rpo {
		rpoIndex[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = g.Idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = g.Idom[b]
			}
		}
		return a
	}
	g.Idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range g.rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if g.Idom[p] == -1 {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && g.Idom[b] != newIdom {
				g.Idom[b] = newIdom
				changed = true
			}
		}
	}
}

// Dominates reports whether block a dominates block b (reflexive).
func (g *CFG) Dominates(a, b int) bool {
	if g.Idom[b] == -1 {
		return false // unreachable
	}
	for {
		if a == b {
			return true
		}
		if b == 0 || g.Idom[b] == b {
			return a == b
		}
		b = g.Idom[b]
	}
}

// Loop is one natural loop: the header block, the set of member blocks,
// and the back edges (tail → header) that define it. Loops sharing a
// header are merged.
type Loop struct {
	Header    int
	Blocks    map[int]bool
	BackEdges [][2]int
}

// NaturalLoops finds all natural loops via back edges (u → h where h
// dominates u), merging loops with the same header. The result is
// sorted by decreasing member count, so enclosing loops come before the
// loops they nest.
func (g *CFG) NaturalLoops() []*Loop {
	byHeader := make(map[int]*Loop)
	var order []int
	for _, u := range g.rpo {
		for _, h := range g.Blocks[u].Succs {
			if !g.Dominates(h, u) {
				continue
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[int]bool{h: true}}
				byHeader[h] = l
				order = append(order, h)
			}
			l.BackEdges = append(l.BackEdges, [2]int{u, h})
			// Collect the natural loop body: everything that reaches u
			// without passing through h.
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[b] {
					continue
				}
				l.Blocks[b] = true
				stack = append(stack, g.Blocks[b].Preds...)
			}
		}
	}
	out := make([]*Loop, 0, len(order))
	for _, h := range order {
		out = append(out, byHeader[h])
	}
	// Stable order: larger (outer) loops first, ties by header ID so the
	// result is deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if len(b.Blocks) > len(a.Blocks) ||
				(len(b.Blocks) == len(a.Blocks) && b.Header < a.Header) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}
