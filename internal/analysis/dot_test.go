package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDumpDotGolden pins the exact Graphviz rendering of the canonical
// counted-loop CFG: block carving, control-flow edges, the bold back
// edge, and the dashed dominator-tree edges. Run with -update to
// regenerate after an intentional format change.
func TestDumpDotGolden(t *testing.T) {
	got := DumpDot(BuildCFG(counted()))
	golden := filepath.Join("testdata", "counted.dot")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/analysis -run DumpDot -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("DumpDot drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDumpDotStructure(t *testing.T) {
	out := DumpDot(BuildCFG(counted()))
	for _, want := range []string{
		"digraph",
		"B2 -> B1 [style=bold, color=red];", // the back edge
		"[style=dashed, color=gray, constraint=false]", // dominator links
		"head:",     // label shown in the header block
		"jmp  head", // pseudo rendering inside a node
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpDotEscaping(t *testing.T) {
	if got := escapeDot(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("escapeDot = %q", got)
	}
}

// TestDumpDotAnnotatedGolden pins the interprocedurally annotated CFG
// rendering: entry facts in the graph label and callee summaries under
// each call instruction, all in sorted (deterministic) order.
func TestDumpDotAnnotatedGolden(t *testing.T) {
	p := interTestProg()
	ip := ComputeInterproc(p)
	got := DumpDotAnnotated(BuildCFG(p.Funcs[0]), ip)
	golden := filepath.Join("testdata", "inter_main.dot")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/analysis -run DumpDot -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("DumpDotAnnotated drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDumpCallGraphDotGolden pins the whole-program call-graph
// rendering with write summaries and entry facts.
func TestDumpCallGraphDotGolden(t *testing.T) {
	got := DumpCallGraphDot(ComputeInterproc(interTestProg()))
	golden := filepath.Join("testdata", "callgraph.dot")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/analysis -run DumpCallGraph -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("DumpCallGraphDot drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDumpDotAnnotatedStructure spot-checks the annotation content and
// that a nil Interproc degrades to the plain rendering.
func TestDumpDotAnnotatedStructure(t *testing.T) {
	p := interTestProg()
	ip := ComputeInterproc(p)
	out := DumpDotAnnotated(BuildCFG(p.Funcs[0]), ip)
	for _, want := range []string{
		"entry checked:",
		"quiet: quiet", // the quiet helper's summary under its call
		"^ ",           // annotation marker
	} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated dot missing %q:\n%s", want, out)
		}
	}
	plain := DumpDot(BuildCFG(p.Funcs[0]))
	if got := DumpDotAnnotated(BuildCFG(p.Funcs[0]), nil); got != plain {
		t.Error("nil Interproc must fall back to the plain DumpDot rendering")
	}
	cg := DumpCallGraphDot(ip)
	for _, want := range []string{
		`"main" -> "quiet";`,
		"entry checked: g+0", // entryfact's provably-checked entry fact
	} {
		if !strings.Contains(cg, want) {
			t.Errorf("call-graph dot missing %q:\n%s", want, cg)
		}
	}
}
