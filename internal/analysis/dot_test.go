package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDumpDotGolden pins the exact Graphviz rendering of the canonical
// counted-loop CFG: block carving, control-flow edges, the bold back
// edge, and the dashed dominator-tree edges. Run with -update to
// regenerate after an intentional format change.
func TestDumpDotGolden(t *testing.T) {
	got := DumpDot(BuildCFG(counted()))
	golden := filepath.Join("testdata", "counted.dot")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/analysis -run DumpDot -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("DumpDot drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDumpDotStructure(t *testing.T) {
	out := DumpDot(BuildCFG(counted()))
	for _, want := range []string{
		"digraph",
		"B2 -> B1 [style=bold, color=red];", // the back edge
		"[style=dashed, color=gray, constraint=false]", // dominator links
		"head:",     // label shown in the header block
		"jmp  head", // pseudo rendering inside a node
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpDotEscaping(t *testing.T) {
	if got := escapeDot(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("escapeDot = %q", got)
	}
}
