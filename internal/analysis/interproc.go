package analysis

import (
	"sort"

	"edb/internal/asm"
	"edb/internal/isa"
)

// This file is the interprocedural extension of the available-address
// dataflow. The intraprocedural planner (plan.go) tracks the single
// most-recent check and treats every call as a barrier; here the fact
// domain widens to a *set* of available checked address expressions and
// calls are filtered through the callee's bottom-up write summary: a
// fact for address E survives a call exactly when the callee provably
// cannot write E (Summary.Writes may-alias test). Value-form facts also
// flow top-down across call edges: a function whose every caller has a
// check of E available at the call site starts with E available.
//
// Soundness has two layers. At run time the CodePatch store hook keeps
// a per-address oracle of every executed check (codepatch.WMS.checked),
// flushed on monitor updates, so an elided store is validated against
// the actual execution and notification sequences are identical to an
// unoptimized image by construction. Statically, the may-write kill
// rule is deliberately stronger than that oracle needs: it guarantees
// that between the dominating check and the elided store no
// instruction — caller or callee — stores to the checked address, which
// is the invariant the dependence map (depmap.go) records and the
// future incremental re-patcher invalidates against.

// ckSet is the set-lattice dataflow fact: the address expressions whose
// checks are available (executed on every path, still valid) at a
// program point. top marks unvisited edges (meet identity).
type ckSet struct {
	top   bool
	facts map[Expr]bool
}

func setTopFact() ckSet { return ckSet{top: true} }

func (s ckSet) has(e Expr) bool { return !s.top && s.facts[e] }

func (s *ckSet) add(e Expr) {
	if s.top {
		return
	}
	if s.facts == nil {
		s.facts = make(map[Expr]bool)
	}
	s.facts[e] = true
}

func (s ckSet) clone() ckSet {
	if s.top || len(s.facts) == 0 {
		return ckSet{top: s.top}
	}
	m := make(map[Expr]bool, len(s.facts))
	for e := range s.facts {
		m[e] = true
	}
	return ckSet{facts: m}
}

func (s ckSet) equal(o ckSet) bool {
	if s.top != o.top {
		return false
	}
	if len(s.facts) != len(o.facts) {
		return false
	}
	for e := range s.facts {
		if !o.facts[e] {
			return false
		}
	}
	return true
}

// String renders the set deterministically for diagnostics.
func (s ckSet) String() string {
	if s.top {
		return "⊤"
	}
	if len(s.facts) == 0 {
		return "nothing"
	}
	parts := make([]string, 0, len(s.facts))
	for e := range s.facts {
		parts = append(parts, e.String())
	}
	sortStrings(parts)
	out := parts[0]
	for _, p := range parts[1:] {
		out += "," + p
	}
	return out
}

// meetSets intersects two facts (top is the identity).
func meetSets(a, b ckSet) ckSet {
	if a.top {
		return b.clone()
	}
	if b.top {
		return a.clone()
	}
	out := ckSet{}
	for e := range a.facts {
		if b.facts[e] {
			out.add(e)
		}
	}
	return out
}

// removeIf drops facts matched by pred.
func (s *ckSet) removeIf(pred func(Expr) bool) {
	if s.top {
		return
	}
	for e := range s.facts {
		if pred(e) {
			delete(s.facts, e)
		}
	}
}

// exprsAlias reports whether a store to address w may write the address
// of fact x, under frame layout fi. Unknown forms err toward true.
func exprsAlias(x, w Expr, fi frameInfo) bool {
	ws, wOwn := frameSlot(w, fi)
	xs, xOwn := frameSlot(x, fi)
	if wOwn {
		if xOwn {
			return xs == ws
		}
		// An own-frame write cannot hit a global; a constant or unknown
		// pointer could numerically coincide with the stack.
		return x.Kind != ESymbol
	}
	if xOwn {
		// Only an unknown or constant address may point back into the
		// frame.
		return w.Kind != ESymbol
	}
	switch w.Kind {
	case ESymbol:
		switch x.Kind {
		case ESymbol:
			return x.Sym == w.Sym && x.Off == w.Off
		default: // EConst or unknown register base
			return true
		}
	case EConst:
		return true // absolute address: may be anything
	default:
		return true // unknown pointer store: may write anything
	}
}

// ipContext carries the whole-program facts one interprocedural
// dataflow run needs.
type ipContext struct {
	cg      *CallGraph
	sums    map[string]*Summary
	entries map[string]ckSet
	patched bool // recognise explicit check pairs (verify mode)
}

// entryFor returns the entry fact set of fn (bottom when unknown).
func (c *ipContext) entryFor(fn string) ckSet {
	if c.entries == nil {
		return ckSet{}
	}
	if s, ok := c.entries[fn]; ok {
		return s.clone()
	}
	return ckSet{}
}

// stepAvail advances the available-check set across the instruction at
// body index i. It returns the new set and whether a two-instruction
// check pair was consumed (verify mode only). env is updated in place.
func (c *ipContext) stepAvail(st ckSet, env *regEnv, fi frameInfo, body []asm.Inst, i int) (ckSet, bool) {
	in := body[i]
	if c.patched {
		if e, jimm, ok := pairAt(body, i, env); ok {
			applyEnv(env, in)
			applyEnv(env, body[i+1])
			switch jimm {
			case stubFull, stubFast:
				st.add(e)
			case stubPre:
				// Preliminary checks warm the miss cache only; they may
				// run for stores this loop entry never executes, so they
				// establish no fact.
			}
			return st, true
		}
		if kindOf(in) == kindCheckCall {
			// Lone check call: AT2 holds an unknown address; no fact.
			applyEnv(env, in)
			return st, false
		}
	}
	switch kindOf(in) {
	case kindCall:
		st = c.callTransfer(st, in, fi)
		applyEnv(env, in)
		return st, false
	case kindIrregular:
		applyEnv(env, in)
		return ckSet{}, false
	}
	if in.Pseudo == asm.PNone && in.Op == isa.TRAP {
		applyEnv(env, in)
		return ckSet{}, false
	}
	if in.Pseudo == asm.PNone && in.Op == isa.SW {
		e := env.resolve(in.RS1, in.Imm)
		st.removeIf(func(x Expr) bool { return exprsAlias(x, e, fi) })
		st.add(e) // the store is (or is covered by) a check of e
		applyEnv(env, in)
		return st, false
	}
	for _, r := range defs(in) {
		r := r
		st.removeIf(func(x Expr) bool { return x.Kind == ERegister && x.Reg == r })
	}
	applyEnv(env, in)
	return st, false
}

// callTransfer filters the fact set through a call: register-based
// facts whose base the convention does not preserve die; every fact the
// callee's transitive may-write set could alias dies; an unresolvable
// callee kills everything.
func (c *ipContext) callTransfer(st ckSet, in asm.Inst, fi frameInfo) ckSet {
	st.removeIf(func(x Expr) bool {
		if x.Kind == ERegister && !callPreserved(x.Reg) {
			return true
		}
		return false
	})
	var sum *Summary
	if in.Pseudo == asm.PCall {
		sum = c.sums[in.Label]
	}
	if sum == nil || sum.Writes.Top {
		return ckSet{} // unknown callee: conservative bottom
	}
	st.removeIf(func(x Expr) bool { return sum.Writes.writesExpr(x, fi) })
	return st
}

// availDataflow runs the interprocedural available-check dataflow over
// one function to a fixed point and returns the IN set per block.
func (c *ipContext) availDataflow(g *CFG, fi frameInfo, entry ckSet) []ckSet {
	nb := len(g.Blocks)
	in := make([]ckSet, nb)
	out := make([]ckSet, nb)
	for i := range in {
		in[i] = setTopFact()
		out[i] = setTopFact()
	}
	in[0] = entry.clone()

	transfer := func(b *Block, st ckSet) ckSet {
		st = st.clone()
		var env regEnv
		for i := b.Start; i < b.End; i++ {
			var skip bool
			st, skip = c.stepAvail(st, &env, fi, g.Fn.Body, i)
			if skip {
				i++
			}
		}
		return st
	}

	if g.Irregular {
		// Control flow we cannot model: assume any block is enterable
		// with no facts at all.
		for i := range in {
			in[i] = ckSet{}
			out[i] = transfer(g.Blocks[i], ckSet{})
		}
		return in
	}

	for changed := true; changed; {
		changed = false
		for _, b := range g.rpo {
			blk := g.Blocks[b]
			st := in[b]
			if b != 0 {
				st = setTopFact()
				for _, p := range blk.Preds {
					st = meetSets(st, out[p])
				}
				if !st.equal(in[b]) {
					in[b] = st
					changed = true
				}
			}
			no := transfer(blk, st)
			if !no.equal(out[b]) {
				out[b] = no
				changed = true
			}
		}
	}
	return in
}

// walkAvail runs the dataflow for f and then replays it linearly,
// invoking visit with the fact set *before* each instruction. Check
// pairs (verify mode) are visited at the pair's first word with the
// pre-pair set; the paired call word is not visited separately.
func (c *ipContext) walkAvail(f *asm.Func, entry ckSet, visit func(i int, st ckSet, env *regEnv)) {
	g := BuildCFG(f)
	if len(g.Blocks) == 0 {
		return
	}
	fi := frameOf(f)
	in := c.availDataflow(g, fi, entry)
	for _, b := range g.Blocks {
		st := in[b.ID]
		if st.top {
			st = ckSet{} // unreachable block: assume nothing
		} else {
			st = st.clone()
		}
		var env regEnv
		for i := b.Start; i < b.End; i++ {
			visit(i, st, &env)
			var skip bool
			st, skip = c.stepAvail(st, &env, fi, f.Body, i)
			if skip {
				i++
			}
		}
	}
}

// maxEntryIterations is a safety bound on the top-down entry fixpoint;
// the lattice is finite so the loop terminates well before it, but a
// bound keeps a pathological program from hanging the compiler.
const maxEntryIterations = 64

// computeEntries runs the top-down half of the interprocedural
// dataflow: a function's entry set is the meet, over every call site in
// the program, of the value-form facts (symbols and constants —
// register forms are meaningless across the boundary and frame forms
// name the caller's frame) available immediately before the call. The
// program entry function meets with bottom (the machine starts with no
// checks executed), and any unresolved call collapses every entry to
// bottom — the conservative top element of the call graph.
func computeEntries(p *asm.Program, c *ipContext) map[string]ckSet {
	entries := make(map[string]ckSet, len(c.cg.Funcs))
	if c.cg.HasUnknown {
		for _, fn := range c.cg.Funcs {
			entries[fn] = ckSet{}
		}
		return entries
	}
	for _, fn := range c.cg.Funcs {
		entries[fn] = setTopFact()
	}
	entryFn := p.Entry
	if entryFn == "" {
		entryFn = "main"
	}
	entries[entryFn] = ckSet{}

	funcs := make([]*asm.Func, 0, len(p.Funcs))
	for _, f := range p.Funcs {
		if f.Name != checkFuncName {
			funcs = append(funcs, f)
		}
	}

	for iter := 0; iter < maxEntryIterations; iter++ {
		next := make(map[string]ckSet, len(entries))
		for _, fn := range c.cg.Funcs {
			next[fn] = setTopFact()
		}
		next[entryFn] = ckSet{}
		c.entries = entries
		for _, f := range funcs {
			f := f
			c.walkAvail(f, c.entryFor(f.Name), func(i int, st ckSet, env *regEnv) {
				in := f.Body[i]
				if kindOf(in) != kindCall || in.Pseudo != asm.PCall {
					return
				}
				callee, ok := next[in.Label]
				if !ok {
					return
				}
				vals := ckSet{}
				if !st.top {
					for e := range st.facts {
						if e.Kind == ESymbol || e.Kind == EConst {
							vals.add(e)
						}
					}
				}
				next[in.Label] = meetSets(callee, vals)
			})
		}
		// Uncalled functions (dead code or alternate entries) get bottom.
		stable := true
		for fn, s := range next {
			if s.top {
				next[fn] = ckSet{}
				s = next[fn]
			}
			if !s.equal(entries[fn]) {
				stable = false
			}
		}
		entries = next
		if stable {
			break
		}
	}
	c.entries = entries
	return entries
}

// Interproc bundles the whole-program interprocedural facts: the call
// graph, the bottom-up write summaries, and the top-down entry sets.
// PlanChecks computes one per program; VerifyPatched recomputes an
// independent one over the patched image.
type Interproc struct {
	CallGraph *CallGraph
	Summaries map[string]*Summary
	entries   map[string]ckSet
}

// EntryFacts returns the value-form address expressions available on
// entry to fn, sorted by their string form (for dumps and tests).
func (ip *Interproc) EntryFacts(fn string) []Expr {
	s, ok := ip.entries[fn]
	if !ok || s.top {
		return nil
	}
	out := make([]Expr, 0, len(s.facts))
	for e := range s.facts {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ComputeInterproc builds the interprocedural facts for an UNPATCHED
// program (plan mode). The verifier uses the patched-mode equivalent
// internally.
func ComputeInterproc(p *asm.Program) *Interproc {
	return computeInterproc(p, false)
}

func computeInterproc(p *asm.Program, patched bool) *Interproc {
	cg := BuildCallGraph(p)
	sums := Summaries(p, cg)
	ctx := &ipContext{cg: cg, sums: sums, patched: patched}
	entries := computeEntries(p, ctx)
	return &Interproc{CallGraph: cg, Summaries: sums, entries: entries}
}

func (ip *Interproc) context(patched bool) *ipContext {
	return &ipContext{cg: ip.CallGraph, sums: ip.Summaries, entries: ip.entries, patched: patched}
}
