package analysis

import (
	"strings"
	"testing"

	"edb/internal/asm"
	"edb/internal/isa"
)

// prog builds a whole program from named function bodies, in order.
func prog(fns ...func(p *asm.Program)) *asm.Program {
	p := &asm.Program{}
	for _, add := range fns {
		add(p)
	}
	return p
}

// leafFn adds a named function with the given body.
func leafFn(name string, build func(f *asm.Func)) func(p *asm.Program) {
	return func(p *asm.Program) {
		f := p.AddFunc(name)
		build(f)
	}
}

func TestBuildCallGraphEdges(t *testing.T) {
	p := prog(
		leafFn("main", func(f *asm.Func) {
			f.Emit(asm.Call("a"))
			f.Emit(asm.Call("b"))
			f.Emit(asm.Call("a")) // duplicate edge dedupes
			f.Emit(asm.Ret())
		}),
		leafFn("a", func(f *asm.Func) {
			f.Emit(asm.Call("a")) // self-recursion
			f.Emit(asm.Ret())
		}),
		leafFn("b", func(f *asm.Func) { f.Emit(asm.Ret()) }),
	)
	cg := BuildCallGraph(p)
	if cg.HasUnknown {
		t.Fatal("fully resolved program marked HasUnknown")
	}
	if got := cg.Callees["main"]; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("main callees = %v, want [a b]", got)
	}
	if got := cg.Callers["a"]; len(got) != 2 || got[0] != "a" || got[1] != "main" {
		t.Errorf("a callers = %v, want [a main]", got)
	}
	if !cg.Recursive("a") {
		t.Error("a must be recursive")
	}
	if cg.Recursive("b") || cg.Recursive("main") {
		t.Error("b/main must not be recursive")
	}
	sccs := cg.SCCs()
	// Bottom-up: {a} and {b} before {main}.
	last := sccs[len(sccs)-1]
	if len(last) != 1 || last[0] != "main" {
		t.Errorf("last SCC = %v, want [main]", last)
	}
}

func TestBuildCallGraphUnknowns(t *testing.T) {
	p := prog(
		leafFn("main", func(f *asm.Func) {
			f.Emit(asm.Call("missing")) // undefined callee
			f.Emit(asm.Ret())
		}),
		leafFn("ind", func(f *asm.Func) {
			// Indirect jump: kindIrregular.
			f.Emit(asm.I(isa.JALR, isa.RA, isa.Reg(10), 0))
			f.Emit(asm.Ret())
		}),
	)
	cg := BuildCallGraph(p)
	if !cg.CallsUnknown["main"] || !cg.CallsUnknown["ind"] || !cg.HasUnknown {
		t.Errorf("unknown-call marking wrong: %+v", cg.CallsUnknown)
	}
	// With HasUnknown, every entry set is bottom.
	sums := Summaries(p, cg)
	ctx := &ipContext{cg: cg, sums: sums}
	entries := computeEntries(p, ctx)
	for fn, s := range entries {
		if s.top || len(s.facts) != 0 {
			t.Errorf("entry[%s] = %v, want bottom", fn, s)
		}
	}
}

// framed builds a frame-disciplined function: the compiler's exact
// prologue/epilogue around the given body.
func framed(name string, words int, body func(f *asm.Func)) func(p *asm.Program) {
	return func(p *asm.Program) {
		f := p.AddFunc(name)
		f.FrameWords = words
		fb := int32(words) * 4
		f.Emit(asm.I(isa.ADDI, isa.SP, isa.SP, -fb))
		f.Emit(asm.SwImplicit(isa.RA, isa.SP, fb-4))
		f.Emit(asm.SwImplicit(isa.FP, isa.SP, fb-8))
		f.Emit(asm.I(isa.ADDI, isa.FP, isa.SP, fb))
		body(f)
		f.Emit(asm.Lw(isa.RA, isa.FP, -4))
		f.Emit(asm.Lw(isa.AT, isa.FP, -8))
		f.Emit(asm.I(isa.ADDI, isa.SP, isa.FP, 0))
		f.Emit(asm.I(isa.ADDI, isa.FP, isa.AT, 0))
		f.Emit(asm.Ret())
	}
}

func TestFrameDiscipline(t *testing.T) {
	p := prog(framed("main", 4, func(f *asm.Func) {
		f.Emit(asm.Sw(isa.Reg(10), isa.FP, -12))
	}))
	fi := frameOf(p.Funcs[0])
	if !fi.disciplined || fi.frameBytes != 16 {
		t.Fatalf("frameOf = %+v, want disciplined 16 bytes", fi)
	}
	// FP-relative slot inside the frame canonicalises; SP form of the
	// same slot agrees.
	if off, ok := frameSlot(Expr{Kind: ERegister, Reg: isa.FP, Off: -12}, fi); !ok || off != -12 {
		t.Errorf("fp-12 slot = %d,%v", off, ok)
	}
	if off, ok := frameSlot(Expr{Kind: ERegister, Reg: isa.SP, Off: 4}, fi); !ok || off != -12 {
		t.Errorf("sp+4 slot = %d,%v", off, ok)
	}
	// Outside the frame: not own.
	if _, ok := frameSlot(Expr{Kind: ERegister, Reg: isa.FP, Off: 4}, fi); ok {
		t.Error("fp+4 must not be an own-frame slot")
	}
	if _, ok := frameSlot(Expr{Kind: ESymbol, Sym: "g"}, fi); ok {
		t.Error("symbol must not be an own-frame slot")
	}

	// A rogue SP definition breaks discipline.
	p2 := prog(framed("main", 4, func(f *asm.Func) {
		f.Emit(asm.I(isa.ADDI, isa.SP, isa.SP, -4)) // mid-body SP bump
	}))
	if fi2 := frameOf(p2.Funcs[0]); fi2.disciplined {
		t.Error("rogue SP definition must break frame discipline")
	}
	// No frame at all.
	p3 := prog(leafFn("main", func(f *asm.Func) { f.Emit(asm.Ret()) }))
	if fi3 := frameOf(p3.Funcs[0]); fi3.disciplined {
		t.Error("frameless function must not be disciplined")
	}
}

func TestSummariesClassification(t *testing.T) {
	p := prog(
		leafFn("main", func(f *asm.Func) {
			f.Emit(asm.Call("quiet"))
			f.Emit(asm.Call("writer"))
			f.Emit(asm.Ret())
		}),
		framed("quiet", 4, func(f *asm.Func) {
			f.Emit(asm.Sw(isa.Reg(10), isa.FP, -12)) // own frame only
		}),
		framed("writer", 4, func(f *asm.Func) {
			f.Emit(asm.La(isa.Reg(12), "g", 0))
			f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 4)) // g+4
		}),
		leafFn("pureleaf", func(f *asm.Func) {
			f.Emit(asm.I(isa.ADD, isa.Reg(10), isa.Reg(11), int32(isa.Reg(12))))
			f.Emit(asm.Ret())
		}),
	)
	cg := BuildCallGraph(p)
	sums := Summaries(p, cg)

	if s := sums["quiet"]; !s.Quiet || s.Pure || s.OwnFrameStores != 3 {
		t.Errorf("quiet = %+v", s)
	}
	if s := sums["writer"]; s.Quiet || s.Writes.Top {
		t.Errorf("writer = %+v", s)
	} else if !s.Writes.writesExpr(Expr{Kind: ESymbol, Sym: "g", Off: 4}, frameInfo{}) {
		t.Error("writer must may-write g+4")
	} else if s.Writes.writesExpr(Expr{Kind: ESymbol, Sym: "h", Off: 0}, frameInfo{}) {
		t.Error("writer must not may-write h")
	}
	if s := sums["pureleaf"]; !s.Pure || !s.Quiet {
		t.Errorf("pureleaf = %+v", s)
	}
	// main transitively writes what writer writes; calls make it unquiet.
	if s := sums["main"]; s.Quiet || !s.Writes.writesExpr(Expr{Kind: ESymbol, Sym: "g", Off: 4}, frameInfo{}) {
		t.Errorf("main = %+v", s)
	}
	if got := sums["writer"].Writes.String(); got != "g+4" {
		t.Errorf("writer writes = %q, want g+4", got)
	}
	if got := sums["quiet"].Writes.String(); got != "∅" {
		t.Errorf("quiet writes = %q, want ∅", got)
	}
	if !strings.Contains(sums["quiet"].String(), "quiet") {
		t.Errorf("summary string = %q", sums["quiet"].String())
	}
}

func TestSummariesRecursionAndTop(t *testing.T) {
	p := prog(
		leafFn("main", func(f *asm.Func) {
			f.Emit(asm.Call("even"))
			f.Emit(asm.Call("ext"))
			f.Emit(asm.Ret())
		}),
		// Mutual recursion: even ↔ odd, odd writes g.
		leafFn("even", func(f *asm.Func) {
			f.Emit(asm.Call("odd"))
			f.Emit(asm.Ret())
		}),
		leafFn("odd", func(f *asm.Func) {
			f.Emit(asm.La(isa.Reg(12), "g", 0))
			f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0))
			f.Emit(asm.Call("even"))
			f.Emit(asm.Ret())
		}),
		leafFn("ext", func(f *asm.Func) {
			f.Emit(asm.Call("undefined_extern"))
			f.Emit(asm.Ret())
		}),
	)
	cg := BuildCallGraph(p)
	sums := Summaries(p, cg)
	g := Expr{Kind: ESymbol, Sym: "g"}
	if !sums["even"].Writes.writesExpr(g, frameInfo{}) {
		t.Error("even must inherit odd's write of g through the SCC")
	}
	if !cg.Recursive("even") || !cg.Recursive("odd") {
		t.Error("even/odd must be recursive")
	}
	if !sums["ext"].Writes.Top {
		t.Error("a function calling an undefined extern must summarise to ⊤")
	}
	if got := sums["ext"].Writes.String(); got != "⊤" {
		t.Errorf("top writes = %q", got)
	}
	if !sums["main"].Writes.Top {
		t.Error("main must inherit ⊤ from ext")
	}
}

func TestWriteSetWidening(t *testing.T) {
	var ws WriteSet
	for i := 0; i <= maxOffsetsPerSym; i++ {
		ws.addGlobal("arr", int64(4*i))
	}
	if !ws.Globals["arr"].any {
		t.Fatal("offset set must widen past the bound")
	}
	if !ws.writesExpr(Expr{Kind: ESymbol, Sym: "arr", Off: 9999}, frameInfo{}) {
		t.Error("widened set must cover every offset")
	}
	if !strings.Contains(ws.String(), "arr+*") {
		t.Errorf("widened String = %q", ws.String())
	}
	var wc WriteSet
	wc.Consts.add(0x1000)
	if !wc.writesExpr(Expr{Kind: EConst, Off: 0x2000}, frameInfo{}) {
		t.Error("const writes alias any const address")
	}
	if wc.Empty() {
		t.Error("const write set is not empty")
	}
}

func TestCkSetLattice(t *testing.T) {
	g := Expr{Kind: ESymbol, Sym: "g"}
	h := Expr{Kind: ESymbol, Sym: "h"}
	var a, b ckSet
	a.add(g)
	a.add(h)
	b.add(g)
	m := meetSets(a, b)
	if !m.has(g) || m.has(h) {
		t.Errorf("meet = %v", m)
	}
	if !meetSets(setTopFact(), a).equal(a) || !meetSets(a, setTopFact()).equal(a) {
		t.Error("top must be the meet identity")
	}
	c := a.clone()
	c.removeIf(func(e Expr) bool { return e == g })
	if !a.has(g) || c.has(g) {
		t.Error("clone must not share fact storage")
	}
	if a.equal(b) || !a.equal(a.clone()) {
		t.Error("equal is wrong")
	}
	if s := setTopFact(); s.String() != "⊤" {
		t.Errorf("top String = %q", s.String())
	}
	if s := (ckSet{}); s.String() != "nothing" {
		t.Errorf("bottom String = %q", s.String())
	}
	if got := a.String(); got != "g+0,h+0" {
		t.Errorf("set String = %q", got)
	}
}

func TestExprsAlias(t *testing.T) {
	fi := frameInfo{disciplined: true, frameBytes: 16}
	slotA := Expr{Kind: ERegister, Reg: isa.FP, Off: -4}
	slotB := Expr{Kind: ERegister, Reg: isa.FP, Off: -8}
	g := Expr{Kind: ESymbol, Sym: "g"}
	h := Expr{Kind: ESymbol, Sym: "h"}
	cst := Expr{Kind: EConst, Off: 0x4000}
	unk := Expr{Kind: ERegister, Reg: isa.Reg(12)}

	cases := []struct {
		x, w Expr
		want bool
	}{
		{slotA, slotA, true},
		{slotA, slotB, false},
		{g, slotA, false},  // own-frame write cannot hit a global
		{cst, slotA, true}, // constant could coincide with the stack
		{slotA, g, false},  // symbol write cannot hit the frame
		{g, g, true},
		{g, h, false},
		{g, cst, true},
		{g, unk, true},
		{slotA, unk, true},
		{unk, g, true},
	}
	for _, c := range cases {
		if got := exprsAlias(c.x, c.w, fi); got != c.want {
			t.Errorf("alias(%v, %v) = %v, want %v", c.x, c.w, got, c.want)
		}
	}
}

// interTestProg: main checks g (via its store), calls a quiet callee,
// then stores g again — interprocedurally elidable, intraprocedurally
// not. The callee's own store to g is covered by main's pre-call store
// through the entry fact.
func interTestProg() *asm.Program {
	return prog(
		leafFn("main", func(f *asm.Func) {
			f.Emit(asm.La(isa.Reg(12), "g", 0))
			f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0)) // 1: g checked here
			f.Emit(asm.Call("quiet"))
			f.Emit(asm.La(isa.Reg(12), "g", 0))         // re-materialise (caller-saved)
			f.Emit(asm.Sw(isa.Reg(11), isa.Reg(12), 0)) // 4: elidable across call
			f.Emit(asm.Call("entryfact"))
			f.Emit(asm.Ret())
		}),
		framed("quiet", 4, func(f *asm.Func) {
			f.Emit(asm.Sw(isa.Reg(10), isa.FP, -12))
		}),
		leafFn("entryfact", func(f *asm.Func) {
			f.Emit(asm.La(isa.Reg(13), "g", 0))
			f.Emit(asm.Sw(isa.Reg(10), isa.Reg(13), 0)) // covered on entry
			f.Emit(asm.Ret())
		}),
	)
}

func TestInterprocElidesAcrossQuietCall(t *testing.T) {
	p := interTestProg()
	intra := PlanChecksWithOptions(p, PlanOptions{Intraproc: true})
	inter := PlanChecksWithOptions(p, PlanOptions{})
	if intra.EliminatedChecks != 0 {
		t.Fatalf("intraproc eliminated %d, want 0", intra.EliminatedChecks)
	}
	if inter.EliminatedChecks < 2 {
		t.Fatalf("interproc eliminated %d, want >= 2 (cross-call + entry fact)", inter.EliminatedChecks)
	}
	if inter.EliminatedIntra != intra.EliminatedChecks {
		t.Errorf("EliminatedIntra = %d, want %d", inter.EliminatedIntra, intra.EliminatedChecks)
	}
	if got := inter.Funcs["main"].ClassOf(4); got != CheckElided {
		t.Errorf("main store after quiet call = %v, want elided", got)
	}
	if got := inter.Funcs["entryfact"].ClassOf(1); got != CheckElided {
		t.Errorf("entryfact store = %v, want elided (entry fact)", got)
	}
	if inter.Deps == nil || len(inter.Deps.Sites) < 2 {
		t.Fatalf("dependence map missing: %+v", inter.Deps)
	}
	if intra.Deps != nil || intra.Interproc != nil {
		t.Error("intraproc plan must not carry interproc facts")
	}

	// The cross-call elision must record both the covering check and the
	// quiet callee's summary.
	var site *DepSite
	for i := range inter.Deps.Sites {
		s := &inter.Deps.Sites[i]
		if s.Func == "main" && s.Index == 4 {
			site = s
		}
	}
	if site == nil {
		t.Fatal("no dependence site for the cross-call elision")
	}
	var haveCheck, haveSummary bool
	for _, d := range site.Deps {
		switch d.Kind {
		case DepCheck:
			if d.Func == "main" && d.Index == 1 {
				haveCheck = true
			}
		case DepSummary:
			if d.Func == "quiet" {
				haveSummary = true
			}
		}
	}
	if !haveCheck || !haveSummary {
		t.Errorf("cross-call site deps = %+v, want covering check and quiet summary", site.Deps)
	}

	// Entry facts are visible through the public accessor.
	ip := inter.Interproc
	facts := ip.EntryFacts("entryfact")
	if len(facts) != 1 || facts[0].String() != "g+0" {
		t.Errorf("EntryFacts(entryfact) = %v, want [g+0]", facts)
	}
	if got := ip.EntryFacts("main"); len(got) != 0 {
		t.Errorf("EntryFacts(main) = %v, want none", got)
	}
}

// A writing callee must kill the fact; an unknown callee kills
// everything.
func TestInterprocCallKills(t *testing.T) {
	p := prog(
		leafFn("main", func(f *asm.Func) {
			f.Emit(asm.La(isa.Reg(12), "g", 0))
			f.Emit(asm.Sw(isa.Reg(10), isa.Reg(12), 0))
			f.Emit(asm.Call("writesg"))
			f.Emit(asm.La(isa.Reg(12), "g", 0))
			f.Emit(asm.Sw(isa.Reg(11), isa.Reg(12), 0)) // 4: NOT elidable
			f.Emit(asm.Ret())
		}),
		leafFn("writesg", func(f *asm.Func) {
			f.Emit(asm.La(isa.Reg(13), "g", 0))
			f.Emit(asm.Sw(isa.Reg(10), isa.Reg(13), 0))
			f.Emit(asm.Ret())
		}),
	)
	inter := PlanChecksWithOptions(p, PlanOptions{})
	if got := inter.Funcs["main"].ClassOf(4); got != CheckFull {
		t.Errorf("store after writing callee = %v, want full", got)
	}
	// writesg's own store elides: main's store dominates the call.
	if got := inter.Funcs["writesg"].ClassOf(1); got != CheckElided {
		t.Errorf("writesg entry-fact store = %v, want elided", got)
	}
}

func TestDepMapRoundTripDeterminism(t *testing.T) {
	p := interTestProg()
	plan := PlanChecksWithOptions(p, PlanOptions{})
	b1, err := plan.Deps.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dm, err := ParseDepMap(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := dm.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("round trip not deterministic:\n%s\n%s", b1, b2)
	}
	if _, err := ParseDepMap([]byte("{not json")); err == nil {
		t.Error("garbage must not parse")
	}

	// DependentsOf: a change to quiet invalidates the cross-call site.
	deps := plan.Deps.DependentsOf("quiet")
	found := false
	for _, s := range deps {
		if s.Func == "main" && s.Class == SiteElided {
			found = true
		}
	}
	if !found {
		t.Errorf("DependentsOf(quiet) = %+v, want the main elision", deps)
	}
	// Sites in a function are their own dependents.
	if got := plan.Deps.DependentsOf("entryfact"); len(got) == 0 {
		t.Error("DependentsOf(entryfact) must include its own site")
	}
	if got := plan.Deps.DependentsOf("nosuchfunc"); len(got) != 0 {
		t.Errorf("DependentsOf(nosuchfunc) = %+v, want none", got)
	}

	for _, d := range []Dep{
		{Kind: DepCheck, Func: "f", Index: 3},
		{Kind: DepSummary, Func: "g"},
		{Kind: DepEntry, Func: "h"},
	} {
		if d.String() == "" {
			t.Error("Dep.String must render")
		}
	}
}
