package analysis

import (
	"fmt"
	"sort"
	"strings"

	"edb/internal/asm"
	"edb/internal/isa"
)

// maxOffsetsPerSym bounds the per-symbol offset sets in a WriteSet
// before they widen to "any offset of this symbol".
const maxOffsetsPerSym = 32

// offSet is a bounded set of byte offsets within one memory cell
// (symbol or constant region); any widens it to the whole cell.
type offSet struct {
	any  bool
	offs map[int64]bool
}

func (s *offSet) add(off int64) bool {
	if s.any {
		return false
	}
	if s.offs == nil {
		s.offs = make(map[int64]bool)
	}
	if s.offs[off] {
		return false
	}
	if len(s.offs) >= maxOffsetsPerSym {
		s.any = true
		s.offs = nil
		return true
	}
	s.offs[off] = true
	return true
}

func (s *offSet) widen() bool {
	if s.any {
		return false
	}
	s.any = true
	s.offs = nil
	return true
}

func (s *offSet) covers(off int64) bool { return s.any || s.offs[off] }

func (s *offSet) mergeFrom(o *offSet) bool {
	if o == nil {
		return false
	}
	if o.any {
		return s.widen()
	}
	changed := false
	for off := range o.offs {
		if s.add(off) {
			changed = true
		}
	}
	return changed
}

// WriteSet is the may-write set of one function's *escaping* stores —
// everything it (transitively) writes outside its own stack frame,
// classified by the pointer/escape lattice: own-frame cells (SP/FP-
// relative, within the frame of a frame-disciplined function) are
// dropped because they are dead once the function returns; global cells
// are keyed by data symbol; absolute constant addresses are kept as a
// separate cell; and any store through an unresolvable pointer (heap
// cells, escaped frames, undisciplined SP/FP arithmetic) lifts the set
// to Top.
type WriteSet struct {
	// Top: the function may write anything (unknown pointer store, or an
	// unknown callee somewhere below it).
	Top bool
	// Globals maps data-symbol names to the byte offsets written.
	Globals map[string]*offSet
	// Consts holds absolute constant store addresses.
	Consts offSet
}

// Empty reports whether the set provably contains no escaping write.
func (ws *WriteSet) Empty() bool {
	return !ws.Top && len(ws.Globals) == 0 && !ws.Consts.any && len(ws.Consts.offs) == 0
}

func (ws *WriteSet) addGlobal(sym string, off int64) bool {
	if ws.Top {
		return false
	}
	if ws.Globals == nil {
		ws.Globals = make(map[string]*offSet)
	}
	s := ws.Globals[sym]
	if s == nil {
		s = &offSet{}
		ws.Globals[sym] = s
	}
	return s.add(off)
}

func (ws *WriteSet) setTop() bool {
	if ws.Top {
		return false
	}
	*ws = WriteSet{Top: true}
	return true
}

// mergeFrom unions o into ws, reporting whether ws changed.
func (ws *WriteSet) mergeFrom(o *WriteSet) bool {
	if o == nil {
		return false
	}
	if o.Top {
		return ws.setTop()
	}
	if ws.Top {
		return false
	}
	changed := false
	for sym, offs := range o.Globals {
		if ws.Globals == nil {
			ws.Globals = make(map[string]*offSet)
		}
		s := ws.Globals[sym]
		if s == nil {
			s = &offSet{}
			ws.Globals[sym] = s
		}
		if s.mergeFrom(offs) {
			changed = true
		}
	}
	if ws.Consts.mergeFrom(&o.Consts) {
		changed = true
	}
	return changed
}

// writesExpr reports whether the set may write the address expression e
// (as seen from a caller whose frame layout is fi): may-alias, so
// unknown forms err toward true.
func (ws *WriteSet) writesExpr(e Expr, fi frameInfo) bool {
	if ws.Top {
		return true
	}
	if _, own := frameSlot(e, fi); own {
		// The caller's own frame: a callee's escaping writes are global
		// or constant cells, never live stack above its own frame (Top
		// covers the cases we cannot bound).
		return false
	}
	switch e.Kind {
	case ESymbol:
		if s := ws.Globals[e.Sym]; s != nil && s.covers(e.Off) {
			return true
		}
		// A constant store address could coincide with the symbol.
		return ws.Consts.any || len(ws.Consts.offs) > 0
	case EConst:
		// Constant addresses may alias any escaping write.
		return !ws.Empty()
	default:
		// Unknown register base: may alias anything the callee writes.
		return !ws.Empty()
	}
}

// String renders the set for dumps, deterministically.
func (ws *WriteSet) String() string {
	if ws.Top {
		return "⊤"
	}
	if ws.Empty() {
		return "∅"
	}
	var parts []string
	syms := make([]string, 0, len(ws.Globals))
	for s := range ws.Globals {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, sym := range syms {
		s := ws.Globals[sym]
		if s.any {
			parts = append(parts, sym+"+*")
			continue
		}
		offs := make([]int64, 0, len(s.offs))
		for o := range s.offs {
			offs = append(offs, o)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, o := range offs {
			parts = append(parts, fmt.Sprintf("%s+%d", sym, o))
		}
	}
	if ws.Consts.any {
		parts = append(parts, "const+*")
	} else {
		offs := make([]int64, 0, len(ws.Consts.offs))
		for o := range ws.Consts.offs {
			offs = append(offs, o)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, o := range offs {
			parts = append(parts, fmt.Sprintf("%#x", uint32(o)))
		}
	}
	return strings.Join(parts, ",")
}

// Summary is the bottom-up interprocedural summary of one function.
type Summary struct {
	Func string
	// Writes is the transitive may-write set of escaping stores (own
	// stack-frame writes excluded — they are dead after return).
	Writes WriteSet
	// Quiet: the function and everything it transitively calls write
	// only their own stack frames. A still-valid available-address fact
	// provably survives a call to a quiet function.
	Quiet bool
	// Pure: no stores at all, transitively (Quiet and frame-silent).
	Pure bool
	// OwnFrameStores counts the function's own (non-transitive) stores
	// classified as own-frame cells.
	OwnFrameStores int
	// Frame is the callee's proven frame discipline.
	Frame frameInfo
}

// String renders a one-line summary for dumps.
func (s *Summary) String() string {
	class := "writes " + s.Writes.String()
	switch {
	case s.Pure:
		class = "pure"
	case s.Quiet:
		class = "quiet"
	}
	return fmt.Sprintf("%s: %s (own-frame stores: %d)", s.Func, class, s.OwnFrameStores)
}

// Summaries computes per-function write summaries for the whole
// program, bottom-up over the call graph's strongly connected
// components. Within an SCC (recursion), members start from their own
// local stores and iterate to a fixed point; the lattice is finite
// (bounded offset sets over the program's symbols), so the iteration
// terminates.
func Summaries(p *asm.Program, cg *CallGraph) map[string]*Summary {
	sums := make(map[string]*Summary, len(cg.Funcs))
	local := make(map[string]*Summary, len(cg.Funcs))
	for _, f := range p.Funcs {
		if f.Name == checkFuncName {
			continue
		}
		local[f.Name] = summarizeLocal(f, cg.CallsUnknown[f.Name])
	}
	for _, comp := range cg.SCCs() {
		// Seed each member from its local stores.
		for _, fn := range comp {
			l := local[fn]
			s := &Summary{Func: fn, OwnFrameStores: l.OwnFrameStores, Frame: l.Frame}
			s.Writes.mergeFrom(&l.Writes)
			sums[fn] = s
		}
		inComp := make(map[string]bool, len(comp))
		for _, fn := range comp {
			inComp[fn] = true
		}
		for changed := true; changed; {
			changed = false
			for _, fn := range comp {
				s := sums[fn]
				for _, callee := range cg.Callees[fn] {
					cs := sums[callee]
					if cs == nil {
						// Callee in a later component would contradict
						// bottom-up order; treat as unknown.
						changed = s.Writes.setTop() || changed
						continue
					}
					changed = s.Writes.mergeFrom(&cs.Writes) || changed
				}
			}
			if !changed {
				break
			}
		}
		// Classification after the component converged.
		for _, fn := range comp {
			s := sums[fn]
			s.Quiet = s.Writes.Empty()
			s.Pure = s.Quiet && framesSilent(fn, cg, sums, local, map[string]bool{})
		}
	}
	return sums
}

// framesSilent reports whether fn and everything it transitively calls
// store nothing at all (not even to their own frames).
func framesSilent(fn string, cg *CallGraph, sums map[string]*Summary, local map[string]*Summary, seen map[string]bool) bool {
	if seen[fn] {
		return true // cycle: no new stores on this path
	}
	seen[fn] = true
	l := local[fn]
	if l == nil || l.Writes.Top || !l.Writes.Empty() || l.OwnFrameStores > 0 {
		return false
	}
	for _, c := range cg.Callees[fn] {
		if !framesSilent(c, cg, sums, local, seen) {
			return false
		}
	}
	return true
}

// summarizeLocal classifies every store in f's own body through the
// pointer/escape lattice: own-frame cell, global cell, constant cell,
// or unknown (Top). callsUnknown lifts the whole set to Top — an
// unresolved transfer may execute arbitrary stores.
func summarizeLocal(f *asm.Func, callsUnknown bool) *Summary {
	s := &Summary{Func: f.Name, Frame: frameOf(f)}
	if callsUnknown {
		s.Writes.setTop()
	}
	g := BuildCFG(f)
	for _, b := range g.Blocks {
		var env regEnv
		for i := b.Start; i < b.End; i++ {
			in := f.Body[i]
			if in.Pseudo == asm.PNone && in.Op == isa.SW {
				e := env.resolve(in.RS1, in.Imm)
				if _, own := frameSlot(e, s.Frame); own {
					s.OwnFrameStores++
				} else {
					switch e.Kind {
					case ESymbol:
						s.Writes.addGlobal(e.Sym, e.Off)
					case EConst:
						s.Writes.Consts.add(e.Off)
					default:
						s.Writes.setTop()
					}
				}
			}
			applyEnv(&env, in)
		}
	}
	return s
}
