package analysis

import (
	"sort"

	"edb/internal/asm"
	"edb/internal/isa"
)

// CallGraph is the whole-program call graph over the symbolic assembly:
// one node per function, a direct edge per PCall whose callee is defined
// in the program, and a conservative "top" marking for anything the
// static analysis cannot resolve — raw-immediate JAL targets, indirect
// JALR jumps (the planned function-pointer workloads), calls to symbols
// the program does not define, and functions whose control flow is
// irregular. A function marked CallsUnknown must be assumed to call
// (and be callable from) anything, so every interprocedural fact that
// depends on it degrades to the safe bottom.
type CallGraph struct {
	// Funcs lists the node names in program order.
	Funcs []string
	// Callees maps a function to its direct callees, sorted and deduped.
	Callees map[string][]string
	// Callers is the reverse edge map, sorted and deduped.
	Callers map[string][]string
	// CallsUnknown marks functions containing a call or jump the
	// analysis cannot resolve to a defined function.
	CallsUnknown map[string]bool
	// HasUnknown is set when any function calls an unknown target: the
	// conservative top element. With it set, every function must be
	// assumed reachable from the unresolved site, so interprocedural
	// entry facts collapse to bottom program-wide.
	HasUnknown bool
}

// BuildCallGraph constructs the call graph of p. The CodePatch check
// stub (checkFuncName) is excluded: its body is a host-dispatched
// return word, and check calls (jalr plink, r0, #stub) are not calls in
// the program's own call graph.
func BuildCallGraph(p *asm.Program) *CallGraph {
	cg := &CallGraph{
		Callees:      make(map[string][]string),
		Callers:      make(map[string][]string),
		CallsUnknown: make(map[string]bool),
	}
	defined := make(map[string]bool)
	for _, f := range p.Funcs {
		if f.Name == checkFuncName {
			continue
		}
		defined[f.Name] = true
	}
	for _, f := range p.Funcs {
		if f.Name == checkFuncName {
			continue
		}
		cg.Funcs = append(cg.Funcs, f.Name)
		callees := make(map[string]bool)
		for _, in := range f.Body {
			switch kindOf(in) {
			case kindCall:
				if in.Pseudo == asm.PCall && defined[in.Label] {
					callees[in.Label] = true
				} else {
					// Raw JAL immediate or a call to a symbol the
					// program does not define.
					cg.CallsUnknown[f.Name] = true
				}
			case kindIrregular:
				// Indirect JALR / raw-immediate branch: could transfer
				// anywhere, including into another function.
				cg.CallsUnknown[f.Name] = true
			}
		}
		out := make([]string, 0, len(callees))
		for c := range callees {
			out = append(out, c)
		}
		sort.Strings(out)
		cg.Callees[f.Name] = out
		if cg.CallsUnknown[f.Name] {
			cg.HasUnknown = true
		}
	}
	for _, fn := range cg.Funcs {
		for _, c := range cg.Callees[fn] {
			cg.Callers[c] = append(cg.Callers[c], fn)
		}
	}
	for _, fn := range cg.Funcs {
		sort.Strings(cg.Callers[fn])
	}
	return cg
}

// SCCs returns the strongly connected components of the call graph in
// bottom-up (reverse topological) order: every component is preceded by
// all components it calls into, which is the order the summary fixpoint
// consumes. Tarjan's algorithm emits components in exactly this order;
// iteration is over program order, so the result is deterministic.
func (cg *CallGraph) SCCs() [][]string {
	index := make(map[string]int, len(cg.Funcs))
	low := make(map[string]int, len(cg.Funcs))
	onStack := make(map[string]bool, len(cg.Funcs))
	var stack []string
	var out [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range cg.Callees[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, f := range cg.Funcs {
		if _, seen := index[f]; !seen {
			strong(f)
		}
	}
	return out
}

// Recursive reports whether fn is part of a call cycle (including
// direct self-recursion).
func (cg *CallGraph) Recursive(fn string) bool {
	for _, c := range cg.Callees[fn] {
		if c == fn {
			return true
		}
	}
	for _, comp := range cg.SCCs() {
		if len(comp) > 1 {
			for _, m := range comp {
				if m == fn {
					return true
				}
			}
		}
	}
	return false
}

// frameInfo describes what the analysis could prove about a function's
// stack-frame discipline. Only frame-disciplined functions get their
// SP/FP-relative stores classified as own-frame writes; everything else
// is treated as writing unknown memory.
type frameInfo struct {
	// disciplined is set when the function follows the compiler's frame
	// protocol exactly: SP is defined only by the prologue's
	// `addi sp, sp, -F` (the first instruction) and the epilogue's
	// `addi sp, fp, 0`; FP only by the prologue's `addi fp, sp, F` and
	// the epilogue's restore `addi fp, <reg>, 0`.
	disciplined bool
	// frameBytes is 4*FrameWords, the span of the function's own frame:
	// SP-relative offsets in [0, frameBytes) and FP-relative offsets in
	// [-frameBytes, 0) address it.
	frameBytes int64
}

// frameOf derives the frame discipline of f by inspecting every
// definition of SP and FP in the body.
func frameOf(f *asm.Func) frameInfo {
	fb := int64(f.FrameWords) * 4
	if fb <= 0 {
		return frameInfo{}
	}
	ok := true
	for i, in := range f.Body {
		if kindOf(in) == kindCall {
			continue // calls preserve SP/FP by convention
		}
		for _, r := range defs(in) {
			switch r {
			case isa.SP:
				// Prologue allocation or epilogue release only.
				if in.Pseudo == asm.PNone && in.Op == isa.ADDI &&
					((i == 0 && in.RS1 == isa.SP && int64(in.Imm) == -fb) ||
						(in.RS1 == isa.FP && in.Imm == 0)) {
					continue
				}
				ok = false
			case isa.FP:
				// Prologue frame-pointer set or epilogue restore only.
				if in.Pseudo == asm.PNone && in.Op == isa.ADDI &&
					((in.RS1 == isa.SP && int64(in.Imm) == fb) ||
						(in.RS1 != isa.SP && in.RS1 != isa.FP && in.Imm == 0)) {
					continue
				}
				ok = false
			}
		}
	}
	return frameInfo{disciplined: ok, frameBytes: fb}
}

// frameSlot canonicalises an own-frame address expression to its
// FP-relative byte offset. It returns ok=false when the expression does
// not provably address the function's own frame.
func frameSlot(e Expr, fi frameInfo) (int64, bool) {
	if !fi.disciplined || e.Kind != ERegister {
		return 0, false
	}
	switch e.Reg {
	case isa.FP:
		if e.Off >= -fi.frameBytes && e.Off < 0 {
			return e.Off, true
		}
	case isa.SP:
		if e.Off >= 0 && e.Off < fi.frameBytes {
			return e.Off - fi.frameBytes, true
		}
	}
	return 0, false
}
