// Larger-than-RAM streaming round trip: the repo-root differential
// suite for the incremental v3 writer and the bounded-memory streamed
// replay path.
//
//	(a) byte identity: for every benchmark workload × block size, the
//	    incremental trace.Writer must emit a file byte-identical to the
//	    materialise-then-encode WriteV3Blocks path — one emitter, two
//	    entry points.
//	(b) bounded memory: a synthetic trace whose v3 file exceeds a
//	    configured heap ceiling is written event-by-event and replayed
//	    with the streamed sharded engine while a sampler holds peak
//	    heap growth under that ceiling — the file never fits in the
//	    memory the pipeline is allowed to use.
package edb_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"edb/internal/arch"
	"edb/internal/kernel"
	"edb/internal/minic"
	"edb/internal/objects"
	"edb/internal/progs"
	"edb/internal/sessions"
	"edb/internal/sim"
	"edb/internal/trace"
	"edb/internal/tracer"
)

var (
	rtMu     sync.Mutex
	rtTraces = map[string]*trace.Trace{}
)

// workloadTraceRT compiles and traces one benchmark at scale 1,
// memoised across the suite.
func workloadTraceRT(tb testing.TB, name string) *trace.Trace {
	tb.Helper()
	rtMu.Lock()
	defer rtMu.Unlock()
	if tr := rtTraces[name]; tr != nil {
		return tr
	}
	p, err := progs.ByName(name, 1)
	if err != nil {
		tb.Fatal(err)
	}
	img, err := minic.CompileToImage(p.Source)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := kernel.NewMachine(img, arch.PageSize4K)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := tracer.New(m, p.Name).Run(p.Fuel)
	if err != nil {
		tb.Fatal(err)
	}
	rtTraces[name] = tr
	return tr
}

// writerBytes serialises tr through the incremental public Writer.
func writerBytes(tb testing.TB, tr *trace.Trace, blockEvents int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, trace.WriterOptions{
		Program:     tr.Program,
		Objects:     tr.Objects,
		BlockEvents: blockEvents,
		SpoolDir:    tb.TempDir(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			tb.Fatal(err)
		}
	}
	w.SetCounters(tr.BaseCycles, tr.Instret)
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriterByteIdenticalAllWorkloads is differential check (a) over
// the real benchmark traces.
func TestWriterByteIdenticalAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("traces all five workloads; skipped in -short")
	}
	for _, name := range progs.Names() {
		tr := workloadTraceRT(t, name)
		for _, be := range []int{1 << 10, 1 << 15, 0} {
			var want bytes.Buffer
			if err := tr.WriteV3Blocks(&want, be); err != nil {
				t.Fatal(err)
			}
			got := writerBytes(t, tr, be)
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("%s blockEvents=%d: incremental writer output differs from WriteV3Blocks (%d vs %d bytes)",
					name, be, len(got), want.Len())
			}
		}
	}
}

// synthObjects is the object universe of the synthetic trace: globals
// packed into a deliberately small page footprint, so block skipping
// and the bloom filters see a dense bounded write range no matter how
// many events stream past.
const synthObjects = 64

func synthTable() (*objects.Table, []arch.Range) {
	tab := objects.NewTable()
	ranges := make([]arch.Range, 0, synthObjects)
	for i := 0; i < synthObjects; i++ {
		ba := arch.GlobalBase + arch.Addr(i*256)
		r := arch.Range{BA: ba, EA: ba + 64}
		tab.Add(objects.Object{Kind: objects.KindGlobal, Name: "g", SizeBytes: r.Len()})
		ranges = append(ranges, r)
	}
	return tab, ranges
}

// synthEvents streams a deterministic event sequence to emit: install
// every object, n writes spread across the objects by an LCG, remove
// every object. The same n always produces the same sequence, so the
// generator can feed a materialised oracle and the incremental writer
// identically.
func synthEvents(ranges []arch.Range, n int, emit func(trace.Event) error) error {
	for i, r := range ranges {
		e := trace.Event{Kind: trace.EvInstall, Obj: objects.ID(i + 1), BA: r.BA, EA: r.EA}
		if err := emit(e); err != nil {
			return err
		}
	}
	x := uint32(0x2545F491)
	for k := 0; k < n; k++ {
		x = x*1664525 + 1013904223
		r := ranges[int(x>>8)%len(ranges)]
		ba := r.BA + arch.Addr((x>>16)%16)*4
		e := trace.Event{
			Kind: trace.EvWrite, BA: ba, EA: ba + 4,
			PC: arch.TextBase + arch.Addr(x%50_000)*4,
		}
		if err := emit(e); err != nil {
			return err
		}
	}
	for i := len(ranges) - 1; i >= 0; i-- {
		r := ranges[i]
		e := trace.Event{Kind: trace.EvRemove, Obj: objects.ID(i + 1), BA: r.BA, EA: r.EA}
		if err := emit(e); err != nil {
			return err
		}
	}
	return nil
}

// synthTrace materialises the synthetic sequence as an in-memory Trace.
func synthTrace(tb testing.TB, n int) *trace.Trace {
	tb.Helper()
	tab, ranges := synthTable()
	tr := &trace.Trace{Program: "synthetic", Objects: tab, BaseCycles: 40_000_000, Instret: 30_000_000}
	err := synthEvents(ranges, n, func(e trace.Event) error {
		tr.Events = append(tr.Events, e)
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		tb.Fatalf("synthetic trace invalid: %v", err)
	}
	return tr
}

// TestSyntheticStreamedBitIdentical anchors the synthetic generator on
// a fits-in-RAM input: the incremental writer's file is byte-identical
// to the materialised encoding, and streamed sharded replay of that
// file produces the same counters as the in-memory engine.
func TestSyntheticStreamedBitIdentical(t *testing.T) {
	tr := synthTrace(t, 50_000)
	var want bytes.Buffer
	if err := tr.WriteV3Blocks(&want, 4096); err != nil {
		t.Fatal(err)
	}
	got := writerBytes(t, tr, 4096)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("incremental writer output differs from WriteV3Blocks on the synthetic trace")
	}

	set := sessions.Discover(tr)
	ref, err := sim.Run(tr, set)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		out, err := sim.RunWithOptions(nil, set, sim.Options{
			Source: trace.BytesSource(got), Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.PerSession, ref.PerSession) {
			t.Errorf("shards=%d: streamed replay of the written file diverges from the in-memory engine", shards)
		}
	}
}

// heapCeiling is the configured memory ceiling for the >RAM test: peak
// heap growth across write and replay must stay under it while the v3
// file on disk is bigger than it.
const heapCeiling = 32 << 20

// sampleHeap starts a sampler that records peak HeapAlloc until the
// returned stop function is called; stop reports the peak.
func sampleHeap() (stop func() uint64) {
	done := make(chan struct{})
	peakc := make(chan uint64)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				peakc <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	return func() uint64 {
		close(done)
		return <-peakc
	}
}

// TestLargerThanRAMStreamedReplay is bounded-memory check (b): the
// synthetic trace is streamed to disk event-by-event (never holding
// []Event), then replayed with the sharded decode pipeline — and the
// whole round trip's peak heap stays under heapCeiling even though the
// v3 file is larger than heapCeiling.
func TestLargerThanRAMStreamedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("streams millions of events; skipped in -short")
	}
	const nWrites = 6_000_000
	dir := t.TempDir()
	path := filepath.Join(dir, "synthetic.v3")
	tab, ranges := synthTable()

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	stop := sampleHeap()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, trace.WriterOptions{
		Program: "synthetic", Objects: tab, SpoolDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := synthEvents(ranges, nWrites, w.Append); err != nil {
		t.Fatal(err)
	}
	w.SetCounters(40_000_000, 30_000_000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	writePeak := stop()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= heapCeiling {
		t.Fatalf("synthetic v3 file is %d bytes; must exceed the %d-byte ceiling to mean anything",
			fi.Size(), int64(heapCeiling))
	}

	// Discover sessions from the object table alone — no event slice
	// exists anywhere in this test.
	set := sessions.Discover(&trace.Trace{Program: "synthetic", Objects: tab})

	stop = sampleHeap()
	out, err := sim.RunWithOptions(nil, set, sim.Options{
		Source: trace.FileSource(path), Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayPeak := stop()

	if out.TotalWrites != nWrites {
		t.Errorf("streamed replay saw %d writes, want %d", out.TotalWrites, nWrites)
	}
	// Internal consistency: the single-pass engine over the same file
	// must agree with the pipeline bit for bit.
	single, err := sim.RunWithOptions(nil, set, sim.Options{
		Source: trace.FileSource(path), Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.PerSession, single.PerSession) {
		t.Error("pipeline replay diverges from the single-pass engine on the synthetic file")
	}

	for phase, peak := range map[string]uint64{"write": writePeak, "replay": replayPeak} {
		growth := peak - base
		if peak < base {
			growth = 0
		}
		t.Logf("%s: peak heap growth %.1f MiB (file %.1f MiB, ceiling %.0f MiB)",
			phase, float64(growth)/(1<<20), float64(fi.Size())/(1<<20), float64(heapCeiling)/(1<<20))
		if growth > heapCeiling {
			t.Errorf("%s: peak heap growth %d exceeds the %d-byte ceiling", phase, growth, int64(heapCeiling))
		}
	}
}
