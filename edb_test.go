package edb_test

import (
	"bytes"
	"strings"
	"testing"

	"edb"
)

const demo = `
int total = 0;
int add(int v) { total = total + v; return total; }
int main() {
	int i;
	for (i = 1; i <= 4; i = i + 1) { add(i); }
	print(total);
	return 0;
}
`

func TestFacadeSession(t *testing.T) {
	s, err := edb.Launch(demo, edb.CodePatch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BreakOnData("total"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(s.Hits()) != 4 {
		t.Errorf("hits = %d, want 4", len(s.Hits()))
	}
	if !strings.Contains(s.Output(), "10") {
		t.Errorf("output = %q", s.Output())
	}
}

func TestFacadeStrategiesList(t *testing.T) {
	if len(edb.Strategies) != 5 {
		t.Errorf("strategies = %v", edb.Strategies)
	}
}

func TestFacadeExperimentSubset(t *testing.T) {
	results, err := edb.RunExperiment(edb.ExperimentConfig{Programs: []string{"bps"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Program != "bps" {
		t.Fatalf("results = %v", results)
	}
	var buf bytes.Buffer
	edb.WriteReport(&buf, results)
	for _, want := range []string{"Table 1", "Table 4", "Figure 9", "BPS"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestFacadeReportByteIdenticalAcrossWorkers is the facade-level
// determinism guarantee: the rendered report — every table and figure —
// is byte-identical whether the pipeline ran serially or fanned out
// over 8 workers.
func TestFacadeReportByteIdenticalAcrossWorkers(t *testing.T) {
	serial, err := edb.RunExperiment(edb.ExperimentConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := edb.RunExperiment(edb.ExperimentConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	edb.WriteReport(&a, serial)
	edb.WriteReport(&b, parallel)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ across worker counts (%d vs %d bytes)", a.Len(), b.Len())
	}
	if a.Len() == 0 {
		t.Fatal("empty report")
	}
}

func TestFacadeBenchmarkSource(t *testing.T) {
	src, err := edb.BenchmarkSource("qcd", 1)
	if err != nil || !strings.Contains(src, "int main()") {
		t.Errorf("BenchmarkSource: %v", err)
	}
	if _, err := edb.BenchmarkSource("nope", 1); err == nil {
		t.Error("unknown benchmark should fail")
	}
	if len(edb.BenchmarkNames()) != 5 {
		t.Error("benchmark names")
	}
}

func TestFacadeHostProfile(t *testing.T) {
	h := edb.HostTimings{SoftwareLookupNs: 100, SoftwareUpdateNs: 1000}
	p := edb.HostProfile(h, 1)
	if p.SoftwareLookup != 0.1 {
		t.Errorf("profile = %+v", p)
	}
	if edb.PaperTimings.VMFaultHandler != 561 {
		t.Error("paper profile wrong")
	}
}
