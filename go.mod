module edb

go 1.22
