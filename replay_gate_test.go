// The replay-core bench gate (`make replay-gate`): holds the
// flat-memory replay core to the committed BENCH_replay_core.json
// numbers. Two checks:
//
//	(a) static: the committed file itself must still document the
//	    rewrite's win — ≥2x ns/op and ≥5x allocs/op over the recorded
//	    pre-rewrite engine on the sequential replay. This runs in every
//	    `go test ./...` (it reads JSON, no benchmarking).
//
//	(b) dynamic (opt-in, EDB_REPLAY_BENCH=1): re-measure the replay
//	    benchmarks and fail on a >10% ns/op regression or any material
//	    allocation growth against the committed numbers. Burns
//	    benchmark minutes and assumes the baseline's host class, so it
//	    is a separate make target rather than part of `go test ./...`.
//	    EDB_REPLAY_BENCH_SLACK overrides the 10% time slack (fraction,
//	    e.g. "0.25") for hosts unlike the baseline's.
package edb_test

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"edb/internal/sim"
)

type replayBaseline struct {
	PreRewrite map[string]struct {
		NsOp     int64 `json:"ns_op"`
		AllocsOp int64 `json:"allocs_op"`
	} `json:"pre_rewrite"`
	Benchmarks map[string]struct {
		NsOp     int64 `json:"ns_op"`
		BytesOp  int64 `json:"bytes_op"`
		AllocsOp int64 `json:"allocs_op"`
	} `json:"benchmarks"`
}

func loadReplayBaseline(t *testing.T) *replayBaseline {
	t.Helper()
	data, err := os.ReadFile("BENCH_replay_core.json")
	if err != nil {
		t.Fatal(err)
	}
	var base replayBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	return &base
}

// TestReplayCoreBaselineRecordsWin is check (a): the committed baseline
// must document at least the 2x time / 5x allocation improvement the
// flat rewrite was built for. It guards the file against a quiet
// regeneration that papers over a regression.
func TestReplayCoreBaselineRecordsWin(t *testing.T) {
	base := loadReplayBaseline(t)
	old, ok := base.PreRewrite["SimReplay/sequential"]
	if !ok {
		t.Fatal("BENCH_replay_core.json lacks pre_rewrite SimReplay/sequential")
	}
	cur, ok := base.Benchmarks["SimReplay/sequential"]
	if !ok {
		t.Fatal("BENCH_replay_core.json lacks benchmarks SimReplay/sequential")
	}
	if cur.NsOp*2 > old.NsOp {
		t.Errorf("recorded sequential replay %d ns/op is not >=2x faster than pre-rewrite %d ns/op",
			cur.NsOp, old.NsOp)
	}
	if cur.AllocsOp*5 > old.AllocsOp {
		t.Errorf("recorded sequential replay %d allocs/op is not >=5x below pre-rewrite %d allocs/op",
			cur.AllocsOp, old.AllocsOp)
	}
}

// TestReplayBenchGate is check (b): re-measure against the committed
// numbers.
func TestReplayBenchGate(t *testing.T) {
	if os.Getenv("EDB_REPLAY_BENCH") == "" {
		t.Skip("set EDB_REPLAY_BENCH=1 (make replay-gate) to run the replay-core regression gate")
	}
	slack := 0.10
	if s := os.Getenv("EDB_REPLAY_BENCH_SLACK"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("EDB_REPLAY_BENCH_SLACK: %v", err)
		}
		slack = v
	}
	base := loadReplayBaseline(t)

	check := func(name string, f func(b *testing.B)) {
		want, ok := base.Benchmarks[name]
		if !ok {
			t.Fatalf("BENCH_replay_core.json has no entry %q", name)
		}
		// Best of three: benchmark minima are far more stable than
		// means, and the gate asks "can the code still run this fast".
		var ns, allocs int64
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(f)
			if i == 0 || r.NsPerOp() < ns {
				ns = r.NsPerOp()
			}
			allocs = r.AllocsPerOp()
		}
		t.Logf("%s: %d ns/op (baseline %d), %d allocs/op (baseline %d)",
			name, ns, want.NsOp, allocs, want.AllocsOp)
		if limit := float64(want.NsOp) * (1 + slack); float64(ns) > limit {
			t.Errorf("%s: %d ns/op exceeds baseline %d by more than %.0f%%",
				name, ns, want.NsOp, slack*100)
		}
		// Allocation counts are deterministic per Go version; allow 2%
		// drift for scheduler-dependent bookkeeping, no more.
		if limit := float64(want.AllocsOp)*1.02 + 1; float64(allocs) > limit {
			t.Errorf("%s: %d allocs/op exceeds baseline %d", name, allocs, want.AllocsOp)
		}
	}

	tr, set, _ := fixtures(t)
	pp, err := sim.Prepare(tr)
	if err != nil {
		t.Fatal(err)
	}
	check("SimReplay/sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Sequential(tr, set); err != nil {
				b.Fatal(err)
			}
		}
	})
	check("SimReplay/sequential-prepassed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWithOptions(tr, set, sim.Options{Shards: 1, Prepass: pp}); err != nil {
				b.Fatal(err)
			}
		}
	})
	check("SimReplay/sharded-2-prepassed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunWithOptions(tr, set, sim.Options{Shards: 2, Prepass: pp}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
