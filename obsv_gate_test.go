// The obsv-bench gate (`make obsv-bench`): proves the observability
// layer's disabled path costs nothing, by (a) asserting the nil-sink
// micro-paths allocate zero, and (b) re-measuring the pipeline
// benchmarks with observation disabled against the committed
// BENCH_pipeline.json baseline — >5% ns/op regression or any material
// allocation growth fails.
//
// The gate is opt-in (EDB_OBSV_BENCH=1): it burns benchmark minutes
// and compares wall-clock against a baseline recorded on the CI host
// class, so it is a separate make target rather than part of
// `go test ./...`. EDB_OBSV_BENCH_SLACK overrides the 5% time slack
// (fraction, e.g. "0.20") for hosts unlike the baseline's.
package edb_test

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"edb/internal/exp"
	"edb/internal/obsv"
	"edb/internal/sim"
)

type benchBaseline struct {
	Benchmarks map[string]struct {
		NsOp     int64 `json:"ns_op"`
		BytesOp  int64 `json:"bytes_op"`
		AllocsOp int64 `json:"allocs_op"`
	} `json:"benchmarks"`
}

func TestObsvBenchGate(t *testing.T) {
	if os.Getenv("EDB_OBSV_BENCH") == "" {
		t.Skip("set EDB_OBSV_BENCH=1 (make obsv-bench) to run the disabled-path regression gate")
	}
	slack := 0.05
	if s := os.Getenv("EDB_OBSV_BENCH_SLACK"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("EDB_OBSV_BENCH_SLACK: %v", err)
		}
		slack = v
	}

	// (a) Micro contract: nil-sink observation allocates nothing.
	if n := testing.AllocsPerRun(1000, func() {
		var tr *obsv.Tracer
		sp := tr.StartSpan("phase")
		sp.Attr("k", "v")
		sp.End()
		tr.Event("cache-hit")
		var m *obsv.Metrics
		m.Inc("c")
		m.Observe("h", 1)
	}); n != 0 {
		t.Errorf("disabled-path observation allocates %v/op, want 0", n)
	}

	// (b) Macro contract: the unobserved pipeline matches the baseline.
	data, err := os.ReadFile("BENCH_pipeline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base benchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}

	check := func(name string, f func(b *testing.B)) {
		want, ok := base.Benchmarks[name]
		if !ok {
			t.Fatalf("BENCH_pipeline.json has no entry %q", name)
		}
		// Best of three: benchmark minima are far more stable than
		// means, and the gate asks "can the code still run this fast",
		// not "what is the expected latency".
		var ns, allocs, bytes int64
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(f)
			if i == 0 || r.NsPerOp() < ns {
				ns = r.NsPerOp()
			}
			allocs, bytes = r.AllocsPerOp(), r.AllocedBytesPerOp()
		}
		t.Logf("%s: %d ns/op (baseline %d), %d allocs/op (baseline %d)",
			name, ns, want.NsOp, allocs, want.AllocsOp)
		if limit := float64(want.NsOp) * (1 + slack); float64(ns) > limit {
			t.Errorf("%s: %d ns/op exceeds baseline %d by more than %.0f%%",
				name, ns, want.NsOp, slack*100)
		}
		// Allocation counts are deterministic per Go version; allow 2%
		// drift for scheduler-dependent pool bookkeeping, no more.
		if limit := float64(want.AllocsOp) * 1.02; float64(allocs) > limit {
			t.Errorf("%s: %d allocs/op exceeds baseline %d (disabled-path observation must not allocate)",
				name, allocs, want.AllocsOp)
		}
		if limit := float64(want.BytesOp) * 1.05; float64(bytes) > limit {
			t.Errorf("%s: %d B/op exceeds baseline %d", name, bytes, want.BytesOp)
		}
	}

	check("SimReplay/sequential", func(b *testing.B) {
		tr, set, _ := fixtures(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Sequential(tr, set); err != nil {
				b.Fatal(err)
			}
		}
	})
	check("ExpRunCached", func(b *testing.B) {
		exp.ResetCache()
		if _, err := exp.Run(exp.Config{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exp.Run(exp.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
