// The serving soak gate (`make serve-gate`): holds edb-serve to the
// committed BENCH_serve.json numbers. Two checks:
//
//	(a) static: the committed file itself must document a survivable
//	    soak — >=1000 submissions across >=8 tenants and >=8 distinct
//	    specs with zero failed requests and zero result-hash
//	    inconsistencies. This runs in every `go test ./...` (it reads
//	    JSON, no server).
//
//	(b) dynamic (opt-in, EDB_SERVE_BENCH=1): boot a real server on a
//	    loopback listener, drive the committed soak shape through the
//	    loadgen's hash-first clients, and fail if any request fails,
//	    any spec's repeats disagree on the result hash, the p99 latency
//	    regresses past baseline*(1+slack), or the drain leaks
//	    goroutines. EDB_SERVE_BENCH_SLACK overrides the 50% latency
//	    slack (fraction, e.g. "1.0") for noisy hosts; a fixed 25ms
//	    grace absorbs scheduler jitter on millisecond-scale baselines.
//
// EDB_REGEN_SERVE_BENCH=1 re-runs the soak and rewrites the baseline.
package edb_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"edb/internal/serve"
	"edb/internal/serve/loadgen"
	"edb/internal/sessions"
)

const serveBenchFile = "BENCH_serve.json"

type serveBaseline struct {
	Workload struct {
		Program  string `json:"program"`
		Events   int    `json:"events"`
		Sessions int    `json:"sessions"`
	} `json:"workload"`
	Soak struct {
		Submissions int `json:"submissions"`
		Tenants     int `json:"tenants"`
		Specs       int `json:"specs"`
		Concurrency int `json:"concurrency"`
	} `json:"soak"`
	Results struct {
		loadgen.Summary
		ElapsedMS     float64 `json:"elapsed_ms"`
		ThroughputRPS float64 `json:"throughput_rps"`
	} `json:"results"`
}

func loadServeBaseline(t *testing.T) *serveBaseline {
	t.Helper()
	data, err := os.ReadFile(serveBenchFile)
	if err != nil {
		t.Fatal(err)
	}
	var base serveBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	return &base
}

// TestServeBaselineRecordsSoak is check (a): the committed baseline
// must document the survivability bar — it guards the file against a
// quiet regeneration that shrinks the soak or papers over failures.
func TestServeBaselineRecordsSoak(t *testing.T) {
	base := loadServeBaseline(t)
	if base.Soak.Submissions < 1000 {
		t.Errorf("baseline soak is %d submissions; the gate requires >=1000", base.Soak.Submissions)
	}
	if base.Soak.Tenants < 8 {
		t.Errorf("baseline soak spans %d tenants; the gate requires >=8", base.Soak.Tenants)
	}
	if base.Soak.Specs < 8 {
		t.Errorf("baseline soak uses %d distinct specs; the gate requires >=8", base.Soak.Specs)
	}
	if base.Results.Failures != 0 {
		t.Errorf("baseline records %d failed requests; a survivable server sheds, it does not fail", base.Results.Failures)
	}
	if base.Results.InconsistentSpecs != 0 {
		t.Errorf("baseline records %d result-hash inconsistencies; replay must be deterministic", base.Results.InconsistentSpecs)
	}
	if base.Results.Total != base.Soak.Submissions {
		t.Errorf("baseline results cover %d submissions but the soak declares %d", base.Results.Total, base.Soak.Submissions)
	}
	if base.Results.P99MS <= 0 || base.Results.ThroughputRPS <= 0 {
		t.Errorf("baseline lacks latency/throughput numbers (p99=%v rps=%v)",
			base.Results.P99MS, base.Results.ThroughputRPS)
	}
}

// serveSoak drives the gate's soak shape against a live server:
// tenants t0..t7, each with a few concurrent workers cycling through
// the distinct specs hash-first, so at most one full upload crosses
// the wire per spec and everything else exercises the dedupe path.
func serveSoak(t *testing.T, submissions, tenants, specs, concurrency int) (*loadgen.Report, time.Duration) {
	t.Helper()
	tr, err := loadgen.BuildTrace("qcd", 1)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := loadgen.EncodeTrace(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	goroutinesBefore := runtime.NumGoroutine()
	srv, err := serve.New(serve.Config{
		Workers:  2,
		StoreDir: t.TempDir(),
		Retries:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	headers := make([]*serve.RequestHeader, specs)
	hashes := make([]string, specs)
	for i := range headers {
		headers[i] = &serve.RequestHeader{
			Program:  tr.Program,
			Sessions: serve.SessionSpec{MaxSessions: i + 3},
		}
		hashes[i] = serve.HashRequest(headers[i], payload)
	}

	// Warm the artifact store: one full upload per spec, sequentially,
	// so the timed soak measures steady-state serving rather than the
	// one-time cold-start convoy of every client queueing behind the
	// first replay of each spec.
	warm := &loadgen.Client{BaseURL: "http://" + srv.Addr(), Tenant: "warmup", DeadlineMS: 60_000}
	for i := range headers {
		if res := warm.Submit(context.Background(), headers[i], payload); res.Failed() {
			t.Fatalf("warm-up replay of spec %d failed: %v", i, res.Err)
		}
	}

	report := loadgen.NewReport()
	perWorker := submissions / concurrency
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &loadgen.Client{
				BaseURL:    "http://" + srv.Addr(),
				Tenant:     fmt.Sprintf("t%d", w%tenants),
				DeadlineMS: 60_000,
			}
			for i := 0; i < perWorker; i++ {
				spec := (w + i) % specs
				res := c.SubmitHashFirst(context.Background(), headers[spec], payload, hashes[spec])
				report.Record(hashes[spec], res)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Leak-free shutdown is part of the gate: drain, then the process
	// must settle back to its pre-server goroutine count.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = srv.Drain(dctx)
	cancel()
	if err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	settle := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > goroutinesBefore {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak across the soak: %d before, %d after\n%s",
			goroutinesBefore, after, buf[:runtime.Stack(buf, true)])
	}
	return report, elapsed
}

// TestServeBenchGate is check (b): live soak against the committed
// numbers.
func TestServeBenchGate(t *testing.T) {
	regen := os.Getenv("EDB_REGEN_SERVE_BENCH") != ""
	if os.Getenv("EDB_SERVE_BENCH") == "" && !regen {
		t.Skip("set EDB_SERVE_BENCH=1 (make serve-gate) to run the serving soak gate")
	}
	slack := 0.50
	if s := os.Getenv("EDB_SERVE_BENCH_SLACK"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("EDB_SERVE_BENCH_SLACK: %v", err)
		}
		slack = v
	}
	const (
		submissions = 1024
		tenants     = 8
		specs       = 8
		concurrency = 32
	)
	report, elapsed := serveSoak(t, submissions, tenants, specs, concurrency)
	sum := report.Summarize()
	rps := float64(sum.Total) / elapsed.Seconds()
	t.Logf("soak: %d submissions, %d tenants, %d specs, %d clients: %d failures, %d cached, p50 %.1fms p99 %.1fms, %.0f req/s",
		sum.Total, tenants, specs, concurrency, sum.Failures, sum.Cached, sum.P50MS, sum.P99MS, rps)

	// Survivability is not slack-adjustable: every request answered,
	// every repeat bit-identical.
	if sum.Failures != 0 {
		t.Errorf("%d of %d requests failed; sample causes: %v", sum.Failures, sum.Total, report.Errors())
	}
	if sum.InconsistentSpecs != 0 {
		t.Errorf("%d specs returned inconsistent result hashes across repeats", sum.InconsistentSpecs)
	}

	if regen {
		var base serveBaseline
		tr, err := loadgen.BuildTrace("qcd", 1)
		if err != nil {
			t.Fatal(err)
		}
		base.Workload.Program = tr.Program
		base.Workload.Events = len(tr.Events)
		base.Workload.Sessions = len(sessions.Discover(tr).Sessions)
		base.Soak.Submissions = submissions
		base.Soak.Tenants = tenants
		base.Soak.Specs = specs
		base.Soak.Concurrency = concurrency
		base.Results.Summary = sum
		base.Results.ElapsedMS = float64(elapsed.Microseconds()) / 1000
		base.Results.ThroughputRPS = rps
		data, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(serveBenchFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", serveBenchFile)
		return
	}

	base := loadServeBaseline(t)
	// Latency bar: p99 within slack of the committed number, plus a
	// fixed 25ms grace — the baselines are single-digit milliseconds,
	// where one scheduler preemption on a shared host is tens of ms.
	if limit := base.Results.P99MS*(1+slack) + 25; sum.P99MS > limit {
		t.Errorf("p99 %.1fms exceeds baseline %.1fms by more than %.0f%%+25ms (limit %.1fms)",
			sum.P99MS, base.Results.P99MS, slack*100, limit)
	}
}
