// The incremental re-patching bench gate (`make repatch-gate`): holds
// the live engine's claim — mutating a running image's watch set must
// be far cheaper than the stop-the-world alternative — to the
// committed BENCH_repatch.json numbers. Two checks:
//
//	(a) static: the committed file itself must still document the win —
//	    applying a 33-monitor watch-set change to a live image
//	    (InstallMonitor/RemoveMonitor) and toggling a store rewrite
//	    (RewriteStore + dependence-map demotion + re-verification) must
//	    both be recorded at ≥3x faster than a full re-patch of the same
//	    live session (compile + patch + verify + assemble + machine +
//	    attach + reinstall + re-execute the debuggee back to its pause
//	    point). This runs in every `go test ./...` (it reads JSON, no
//	    benchmarking).
//
//	(b) dynamic (opt-in, EDB_REPATCH_BENCH=1): re-measure all three
//	    paths on this host — identical program, identical 33-monitor
//	    set, best-of-three benchmark minima — and fail if a live ratio
//	    falls below 3x or an incremental path regressed >slack against
//	    its committed ns/op. EDB_REPATCH_BENCH_SLACK overrides the 25%
//	    regression slack; the 3x ratios take no slack because both
//	    sides are measured back-to-back on the same host.
//
// EDB_REGEN_REPATCH_BENCH=1 re-measures and rewrites the baseline.
package edb_test

import (
	"encoding/json"
	"errors"
	"os"
	"sort"
	"strconv"
	"testing"

	"edb/internal/analysis"
	"edb/internal/arch"
	"edb/internal/asm"
	"edb/internal/core/codepatch"
	"edb/internal/kernel"
	"edb/internal/minic"
	"edb/internal/progs"
)

const (
	repatchBenchFile = "BENCH_repatch.json"
	repatchBenchInc  = "Repatch/incremental-watchset"
	repatchBenchRw   = "Repatch/incremental-rewrite"
	repatchBenchFull = "Repatch/full-rebuild"

	// repatchMonitors is the gate's watch-set size: one op installs (and
	// removes) this many word-granular monitors.
	repatchMonitors = 33
	// repatchWin is the required incremental-over-full speedup.
	repatchWin = 3.0
	// repatchFuel bounds the debuggee runs (bps completes well within).
	repatchFuel = 200_000_000
)

type repatchBaseline struct {
	Workload struct {
		Program  string `json:"program"`
		Monitors int    `json:"monitors"`
	} `json:"workload"`
	Benchmarks map[string]struct {
		NsOp     int64 `json:"ns_op"`
		AllocsOp int64 `json:"allocs_op"`
	} `json:"benchmarks"`
}

func loadRepatchBaseline(t *testing.T) *repatchBaseline {
	t.Helper()
	data, err := os.ReadFile(repatchBenchFile)
	if err != nil {
		t.Fatal(err)
	}
	var base repatchBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	return &base
}

// repatchGateFixture is the gate workload: a live optimized bps image
// plus the 33-monitor set (word-granular ranges over its data
// segment) and a probed rewrite target.
type repatchGateFixture struct {
	prog   progs.Program
	img    *codepatch.Image
	ranges []arch.Range
	// rwFn is a function whose store #0 tolerates a ±4 offset toggle
	// (probed at setup; restored immediately).
	rwFn string
}

func repatchGateSetup(tb testing.TB) *repatchGateFixture {
	tb.Helper()
	p, err := progs.ByName("bps", 1)
	if err != nil {
		tb.Fatal(err)
	}
	fx := &repatchGateFixture{prog: p, img: buildRepatchImage(tb, p)}
	// Run the debuggee to completion first: the incremental ops are
	// measured against a fact-laden live image (executed-check table,
	// miss cache populated), the steady state a real mid-run mutation
	// sees — an empty-table image would flatter the linear invalidation
	// scans.
	if err := fx.img.M.Run(repatchFuel); err != nil {
		tb.Fatal(err)
	}

	// The 33-monitor set: word-granular ranges walked across the data
	// symbols in address order, so the set is deterministic.
	data := fx.img.M.Image.Data
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool { return data[names[a]].BA < data[names[b]].BA })
	for _, name := range names {
		r := data[name]
		for a := r.BA; a+4 <= r.EA && len(fx.ranges) < repatchMonitors; a += 4 {
			fx.ranges = append(fx.ranges, arch.Range{BA: a, EA: a + 4})
		}
		if len(fx.ranges) == repatchMonitors {
			break
		}
	}
	if len(fx.ranges) < repatchMonitors {
		tb.Fatalf("bps data segment yields only %d word ranges, need %d", len(fx.ranges), repatchMonitors)
	}

	// Probe a rewritable store: first function whose store #0 accepts a
	// +4 offset delta (undone at once, so the image stays canonical up
	// to demotions — which is the steady state the benchmark measures).
	for _, f := range fx.img.Prog.Funcs {
		if err := fx.img.RewriteStore(f.Name, 0, 4); err == nil {
			if err := fx.img.RewriteStore(f.Name, 0, -4); err != nil {
				tb.Fatal(err)
			}
			fx.rwFn = f.Name
			break
		} else if !errors.Is(err, codepatch.ErrNoSuchStore) && !errors.Is(err, codepatch.ErrImmOverflow) {
			tb.Fatal(err)
		}
	}
	if fx.rwFn == "" {
		tb.Fatal("no rewritable store in the bps image")
	}
	return fx
}

func buildRepatchImage(tb testing.TB, p progs.Program) *codepatch.Image {
	tb.Helper()
	prog, err := minic.Compile(p.Source)
	if err != nil {
		tb.Fatal(err)
	}
	img, err := codepatch.BuildImage(prog, codepatch.PatchOptions{Optimize: true}, arch.PageSize4K, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// incrementalWatchset is one incremental op: grow the live watch set
// to the full monitor set, then shrink it back — no recompile, no
// re-verify, no machine rebuild.
func (fx *repatchGateFixture) incrementalWatchset(tb testing.TB) {
	for _, r := range fx.ranges {
		if err := fx.img.InstallMonitor(r.BA, r.EA); err != nil {
			tb.Fatal(err)
		}
	}
	for _, r := range fx.ranges {
		if err := fx.img.RemoveMonitor(r.BA, r.EA); err != nil {
			tb.Fatal(err)
		}
	}
}

// incrementalRewrite is one incremental self-modifying-code op: toggle
// a store offset out and back, paying the in-place text writes, the
// dependence-map demotion sweep, and two soundness re-verifications.
func (fx *repatchGateFixture) incrementalRewrite(tb testing.TB) {
	if err := fx.img.RewriteStore(fx.rwFn, 0, 4); err != nil {
		tb.Fatal(err)
	}
	if err := fx.img.RewriteStore(fx.rwFn, 0, -4); err != nil {
		tb.Fatal(err)
	}
}

// fullRebuild is one stop-the-world op: the entire ahead-of-time
// pipeline — compile, optimized patch, interprocedural verification,
// assemble, machine, attach — plus reinstalling the watch set and
// re-executing the debuggee. The replay is not optional garnish: a
// from-scratch re-patch abandons the live machine, so a session
// paused mid-run must re-execute to its pause point before debugging
// can continue — exactly the cost the incremental engine exists to
// avoid. The gate charges one full program run for it, matching the
// execution the incremental image's preflight performed.
func (fx *repatchGateFixture) fullRebuild(tb testing.TB) {
	prog, err := minic.Compile(fx.prog.Source)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := codepatch.PatchWithOptions(prog, codepatch.PatchOptions{Optimize: true})
	if err != nil {
		tb.Fatal(err)
	}
	if v := analysis.VerifyPatchedWithDeps(prog, res.DepMap); len(v) > 0 {
		tb.Fatalf("rebuild unsound: %v", v[0])
	}
	timg, err := asm.Assemble(prog)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := kernel.NewMachine(timg, arch.PageSize4K)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := codepatch.Attach(m, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range fx.ranges {
		if err := w.InstallMonitor(r.BA, r.EA); err != nil {
			tb.Fatal(err)
		}
	}
	if err := m.Run(repatchFuel); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkRepatch is the measurement behind BENCH_repatch.json.
func BenchmarkRepatch(b *testing.B) {
	fx := repatchGateSetup(b)
	b.Run("incremental-watchset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fx.incrementalWatchset(b)
		}
	})
	b.Run("incremental-rewrite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fx.incrementalRewrite(b)
		}
	})
	b.Run("full-rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fx.fullRebuild(b)
		}
	})
}

// TestRepatchBaselineRecordsWin is check (a): the committed baseline
// must document both ≥3x incremental wins. It guards the file against
// a quiet regeneration that papers over a regression.
func TestRepatchBaselineRecordsWin(t *testing.T) {
	base := loadRepatchBaseline(t)
	if base.Workload.Program != "bps" || base.Workload.Monitors != repatchMonitors {
		t.Fatalf("baseline workload drifted: %+v", base.Workload)
	}
	full, ok := base.Benchmarks[repatchBenchFull]
	if !ok {
		t.Fatalf("%s lacks benchmark %s", repatchBenchFile, repatchBenchFull)
	}
	for _, name := range []string{repatchBenchInc, repatchBenchRw} {
		inc, ok := base.Benchmarks[name]
		if !ok {
			t.Fatalf("%s lacks benchmark %s", repatchBenchFile, name)
		}
		if float64(inc.NsOp)*repatchWin > float64(full.NsOp) {
			t.Errorf("recorded %s %d ns/op is not >=%.0fx faster than %s %d ns/op",
				name, inc.NsOp, repatchWin, repatchBenchFull, full.NsOp)
		}
	}
}

// TestRepatchBenchGate is check (b): re-measure all three paths and
// hold the live ratios and the incremental paths' committed numbers.
func TestRepatchBenchGate(t *testing.T) {
	regen := os.Getenv("EDB_REGEN_REPATCH_BENCH") != ""
	if os.Getenv("EDB_REPATCH_BENCH") == "" && !regen {
		t.Skip("set EDB_REPATCH_BENCH=1 (make repatch-gate) to run the re-patch latency gate")
	}
	slack := 0.25
	if s := os.Getenv("EDB_REPATCH_BENCH_SLACK"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("EDB_REPATCH_BENCH_SLACK: %v", err)
		}
		slack = v
	}
	fx := repatchGateSetup(t)

	// Soundness pre-flight: after a full watch-set cycle and a rewrite
	// toggle the live image must still verify, and the engine's books
	// must balance — speed of an unsound engine is worth nothing.
	fx.incrementalWatchset(t)
	fx.incrementalRewrite(t)
	if vs := fx.img.Verify(); len(vs) > 0 {
		t.Fatalf("live image fails verification after the gate ops: %v", vs[0])
	}
	if st := fx.img.Stats; st.Installs != st.Removes {
		t.Fatalf("unbalanced engine books after the toggle cycle: %+v", st)
	}

	measure := func(op func(testing.TB)) (ns, allocs int64) {
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for j := 0; j < b.N; j++ {
					op(b)
				}
			})
			if i == 0 || r.NsPerOp() < ns {
				ns = r.NsPerOp()
			}
			allocs = r.AllocsPerOp()
		}
		return ns, allocs
	}
	incns, incallocs := measure(func(tb testing.TB) { fx.incrementalWatchset(tb) })
	rwns, rwallocs := measure(func(tb testing.TB) { fx.incrementalRewrite(tb) })
	fullns, fullallocs := measure(func(tb testing.TB) { fx.fullRebuild(tb) })
	t.Logf("%s: %d ns/op (%d allocs/op)", repatchBenchInc, incns, incallocs)
	t.Logf("%s: %d ns/op (%d allocs/op)", repatchBenchRw, rwns, rwallocs)
	t.Logf("%s: %d ns/op (%d allocs/op)", repatchBenchFull, fullns, fullallocs)

	if regen {
		var base repatchBaseline
		base.Workload.Program = fx.prog.Name
		base.Workload.Monitors = repatchMonitors
		base.Benchmarks = map[string]struct {
			NsOp     int64 `json:"ns_op"`
			AllocsOp int64 `json:"allocs_op"`
		}{
			repatchBenchInc:  {NsOp: incns, AllocsOp: incallocs},
			repatchBenchRw:   {NsOp: rwns, AllocsOp: rwallocs},
			repatchBenchFull: {NsOp: fullns, AllocsOp: fullallocs},
		}
		data, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(repatchBenchFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", repatchBenchFile)
		return
	}

	base := loadRepatchBaseline(t)
	for _, g := range []struct {
		name string
		ns   int64
	}{{repatchBenchInc, incns}, {repatchBenchRw, rwns}} {
		if float64(g.ns)*repatchWin > float64(fullns) {
			t.Errorf("%s %d ns/op is not >=%.0fx faster than full rebuild %d ns/op",
				g.name, g.ns, repatchWin, fullns)
		}
		want, ok := base.Benchmarks[g.name]
		if !ok {
			t.Fatalf("%s has no entry %q", repatchBenchFile, g.name)
		}
		if limit := float64(want.NsOp) * (1 + slack); float64(g.ns) > limit {
			t.Errorf("%s: %d ns/op exceeds baseline %d by more than %.0f%%",
				g.name, g.ns, want.NsOp, slack*100)
		}
	}
	_ = fullallocs
}
