package edb_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"edb"
)

// TestLaunchOptsEquivalence: LaunchOpts with no options behaves exactly
// like the positional Launch — same hits, same output.
func TestLaunchOptsEquivalence(t *testing.T) {
	run := func(launch func() (*edb.Session, error)) (int, string) {
		s, err := launch()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.BreakOnData("total"); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return len(s.Hits()), s.Output()
	}
	h1, o1 := run(func() (*edb.Session, error) { return edb.Launch(demo, edb.CodePatch, 0) })
	h2, o2 := run(func() (*edb.Session, error) { return edb.LaunchOpts(demo, edb.CodePatch) })
	if h1 != h2 || o1 != o2 {
		t.Errorf("LaunchOpts differs from Launch: hits %d/%d output %q/%q", h1, h2, o1, o2)
	}
}

// TestLaunchOptsPageSize: WithPageSize reaches the VirtualMemory
// strategy (8K pages protect wider ranges, so the session still works).
func TestLaunchOptsPageSize(t *testing.T) {
	s, err := edb.LaunchOpts(demo, edb.VirtualMemory, edb.WithPageSize(edb.PageSize8K))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BreakOnData("total"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(s.Hits()) != 4 {
		t.Errorf("hits = %d, want 4", len(s.Hits()))
	}
}

// TestLaunchOptsObserver: WithObserver collects launch + run spans,
// all well-formed, and the Chrome export round-trips.
func TestLaunchOptsObserver(t *testing.T) {
	tr := edb.NewTracer(0)
	s, err := edb.LaunchOpts(demo, edb.TrapPatch, edb.WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if open := tr.Open(); open != 0 {
		t.Fatalf("%d spans left open", open)
	}
	want := map[string]bool{"launch": false, "compile": false, "patch": false,
		"assemble": false, "attach": false, "run": false}
	for _, r := range tr.Records() {
		if _, ok := want[r.Name]; ok {
			want[r.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %q span", name)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
}

// TestRunExperimentContextParity: the context-first entry point yields
// results identical to RunExperiment.
func TestRunExperimentContextParity(t *testing.T) {
	cfg := edb.ExperimentConfig{Programs: []string{"bps"}, Workers: 1}
	a, err := edb.RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := edb.RunExperimentContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || !reflect.DeepEqual(a[0].Summaries, b[0].Summaries) {
		t.Errorf("context entry point diverges: %+v vs %+v", a, b)
	}
}

// TestRunExperimentContextCancelled: cancellation surfaces as an error
// through the public facade.
func TestRunExperimentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	edb.ResetExperimentCache()
	defer edb.ResetExperimentCache()
	if _, err := edb.RunExperimentContext(ctx, edb.ExperimentConfig{Programs: []string{"bps"}}); err == nil {
		t.Fatal("cancelled context: want error")
	}
}

// TestTypedErrorsAs: the re-exported error types are errors.As-able —
// the documented replacement for string matching.
func TestTypedErrorsAs(t *testing.T) {
	edb.ResetExperimentCache()
	defer edb.ResetExperimentCache()
	// A benchmark that cannot exist fails every pipeline; KeepGoing
	// aggregates the failure into a RunError.
	_, err := edb.RunExperiment(edb.ExperimentConfig{
		Programs: []string{"no-such-benchmark"}, KeepGoing: true,
	})
	if err == nil {
		t.Fatal("want aggregated failure")
	}
	var re *edb.RunError
	if !errors.As(err, &re) {
		t.Fatalf("errors.As(*edb.RunError) failed on %T: %v", err, err)
	}
	if len(re.Failures) != 1 || re.Failures[0].Program != "no-such-benchmark" {
		t.Errorf("failures = %+v", re.Failures)
	}
	if !re.Failed("no-such-benchmark") {
		t.Error("Failed() lookup broken")
	}
}

// TestMetricsFacade: the re-exported Metrics registry flows through an
// experiment run and exports Prometheus text.
func TestMetricsFacade(t *testing.T) {
	ms := edb.NewMetrics()
	edb.ResetExperimentCache()
	defer edb.ResetExperimentCache()
	cfg := edb.ExperimentConfig{Programs: []string{"bps"}, Workers: 1}
	cfg.Metrics = ms
	if _, err := edb.RunExperimentContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var snap edb.MetricsSnapshot = ms.Snapshot()
	if snap.Counters[`edb_benchmarks_total{result="ok"}`] != 1 {
		t.Errorf("benchmark counter: %v", snap.Counters)
	}
	var buf bytes.Buffer
	if err := ms.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("edb_benchmarks_total")) {
		t.Errorf("prometheus dump missing counter:\n%s", buf.String())
	}
}
