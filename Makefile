# Development targets. `make ci` is what the CI workflow runs on every
# PR: vet, build, and the full test suite under the race detector,
# twice (-count=2 defeats the test cache and catches order-dependent
# state; -race is load-bearing for the parallel experiment pipeline and
# the sharded simulator).

GO ?= go

.PHONY: ci vet build test race bench-pipeline

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 ./...

# Regenerate the parallel-pipeline baseline recorded in
# BENCH_pipeline.json / EXPERIMENTS.md.
bench-pipeline:
	$(GO) test -bench 'BenchmarkSimReplay|BenchmarkExpRun' -benchmem -run '^$$' .
