# Development targets. `make ci` is what the CI workflow runs on every
# PR: vet, staticcheck (when installed), the patch-soundness lint over
# all five benchmark workloads, build, and the full test suite under
# the race detector, twice (-count=2 defeats the test cache and catches
# order-dependent state; -race is load-bearing for the parallel
# experiment pipeline and the sharded simulator).

GO ?= go

.PHONY: ci vet staticcheck lint build test race bench-pipeline bench-codepatch-opt

ci: vet staticcheck build lint race

vet:
	$(GO) vet ./...

# staticcheck is optional locally (not everyone has it on PATH; we never
# auto-install); the CI workflow installs a pinned version so findings
# always gate merges.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs a pinned copy)"; \
	fi

# Patch-soundness lint: analysis.VerifyPatched / VerifyTrapPatched must
# prove every strategy's patched image sound for every benchmark.
lint:
	@for b in gcc ctex spice qcd bps; do \
		echo "lint: $$b"; \
		$(GO) run ./cmd/minicc -benchmark $$b -lint || exit 1; \
	done

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 ./...

# Regenerate the parallel-pipeline baseline recorded in
# BENCH_pipeline.json / EXPERIMENTS.md.
bench-pipeline:
	$(GO) test -bench 'BenchmarkSimReplay|BenchmarkExpRun' -benchmem -run '^$$' .

# Regenerate the CodePatch check-optimisation ablation recorded in
# BENCH_codepatch_opt.json.
bench-codepatch-opt:
	$(GO) test -bench 'BenchmarkLoopHoistAblation' -benchmem -run '^$$' .
