# Development targets. `make ci` is what the CI workflow runs on every
# PR: vet, staticcheck (when installed), the patch-soundness lint over
# all five benchmark workloads, build, and the full test suite under
# the race detector, twice (-count=2 defeats the test cache and catches
# order-dependent state; -race is load-bearing for the parallel
# experiment pipeline and the sharded simulator).

GO ?= go

.PHONY: ci vet staticcheck lint build test race chaos fuzz bench-pipeline bench-codepatch-opt obsv-bench

ci: vet staticcheck build lint race chaos obsv-bench

vet:
	$(GO) vet ./...

# staticcheck is optional locally (not everyone has it on PATH; we never
# auto-install); the CI workflow installs a pinned version so findings
# always gate merges.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs a pinned copy)"; \
	fi

# Patch-soundness lint: analysis.VerifyPatched / VerifyTrapPatched must
# prove every strategy's patched image sound for every benchmark.
lint:
	@for b in gcc ctex spice qcd bps; do \
		echo "lint: $$b"; \
		$(GO) run ./cmd/minicc -benchmark $$b -lint || exit 1; \
	done

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 ./...

# Chaos harness: the fault framework's own suite plus the differential
# harness and pipeline failure-mode tests — every injection site x kind
# x seed must either fail with a clean typed error or retry to results
# bit-identical to the fault-free baseline. Run under the race detector
# (fault plans are process-global; workers claim benchmarks
# concurrently).
chaos:
	$(GO) test -race ./internal/fault/
	$(GO) test -race -run 'TestChaos|TestWorkerPanic|TestContext|TestKeepGoing|TestRetry|TestPermanentFault|TestCacheDoesNotMemoise|TestCacheSurvives' ./internal/exp/

# Fuzz smoke: the trace-decoder fuzz target over its checked-in corpus
# (truncated real workload traces + regression crashers) plus a short
# exploration budget. CI runs this on every PR; run with a longer
# -fuzztime locally when touching the codec.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTraceRead -fuzztime $(FUZZTIME) ./internal/trace/

# Observability disabled-path gate: re-measures the pipeline
# benchmarks with observation off against BENCH_pipeline.json and
# fails on regression. Allocation counts are the precision gate
# (deterministic per Go version; compared at ~0% tolerance — the
# disabled path must be a nil check, so a single stray allocation
# fails). Wall-clock is gated at baseline*(1+OBSV_SLACK): the test's
# strict default is 5%, but the shared-vCPU CI host class shows ±17%
# run-to-run noise, so CI runs with OBSV_SLACK=0.25 — tight enough to
# catch a real disabled-path slowdown, loose enough not to flake.
# Override on a quiet dedicated host: make obsv-bench OBSV_SLACK=0.05
OBSV_SLACK ?= 0.25
obsv-bench:
	EDB_OBSV_BENCH=1 EDB_OBSV_BENCH_SLACK=$(OBSV_SLACK) $(GO) test -run TestObsvBenchGate -count=1 -v .
	$(GO) test -run '^$$' -bench 'BenchmarkSpanDisabled|BenchmarkEventDisabled|BenchmarkMetricsDisabled' -benchmem ./internal/obsv/

# Regenerate the parallel-pipeline baseline recorded in
# BENCH_pipeline.json / EXPERIMENTS.md.
bench-pipeline:
	$(GO) test -bench 'BenchmarkSimReplay|BenchmarkExpRun' -benchmem -run '^$$' .

# Regenerate the CodePatch check-optimisation ablation recorded in
# BENCH_codepatch_opt.json.
bench-codepatch-opt:
	$(GO) test -bench 'BenchmarkLoopHoistAblation' -benchmem -run '^$$' .
