# Development targets. `make ci` is what the CI workflow runs on every
# PR: vet, staticcheck (when installed), the patch-soundness lint over
# all five benchmark workloads, build, and the full test suite under
# the race detector, twice (-count=2 defeats the test cache and catches
# order-dependent state; -race is load-bearing for the parallel
# experiment pipeline and the sharded simulator).

GO ?= go

.PHONY: ci vet staticcheck lint build test race chaos fuzz cover replay-gate trace-gate serve-gate repatch-gate bench-pipeline bench-replay bench-trace bench-codepatch-opt obsv-bench

ci: vet staticcheck build lint race chaos cover obsv-bench replay-gate trace-gate serve-gate repatch-gate

vet:
	$(GO) vet ./...

# staticcheck is optional locally (not everyone has it on PATH; we never
# auto-install); the CI workflow installs a pinned version so findings
# always gate merges.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs a pinned copy)"; \
	fi

# Patch-soundness lint: analysis.VerifyPatched / VerifyTrapPatched must
# prove every strategy's patched image sound for every benchmark. The
# custom vet suite (internal/edbvet) runs first: obsv nil-is-free
# contract, unregistered fault.Site literals, map iteration feeding
# report output.
lint:
	$(GO) run ./cmd/edbvet .
	@for b in gcc ctex spice qcd bps; do \
		echo "lint: $$b"; \
		$(GO) run ./cmd/minicc -benchmark $$b -lint || exit 1; \
	done

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=2 ./...

# Chaos harness: the fault framework's own suite plus the differential
# harness and pipeline failure-mode tests — every injection site x kind
# x seed must either fail with a clean typed error or retry to results
# bit-identical to the fault-free baseline. Run under the race detector
# (fault plans are process-global; workers claim benchmarks
# concurrently).
chaos:
	$(GO) test -race ./internal/fault/
	$(GO) test -race -run 'TestChaos|TestWorkerPanic|TestContext|TestKeepGoing|TestRetry|TestPermanentFault|TestCacheDoesNotMemoise|TestCacheSurvives' ./internal/exp/
	$(GO) test -race -run 'TestV3|TestOpenStreamFaultInjection|TestReadRejects|TestWriteFaultInjection|TestCorruptionInjection|TestReadFaultInjection' ./internal/trace/
	$(GO) test -race -run 'TestServeChaos' ./internal/serve/

# Fuzz smoke: the binary-decoder fuzz targets over their checked-in
# corpora (truncated real workload traces / request envelopes +
# regression crashers) plus a short exploration budget each. CI runs
# this on every PR; run with a longer -fuzztime locally when touching
# either codec.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTraceRead -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -run '^$$' -fuzz FuzzServeRequest -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -run '^$$' -fuzz FuzzRepatchScript -fuzztime $(FUZZTIME) ./internal/core/codepatch/

# Coverage gate for the replay core's packages: statement coverage of
# internal/sim and internal/sessions must not fall below the recorded
# floors (set just under the flat-memory PR's levels — 95.0% / 100% at
# the time of recording, up from 88.6% / 98.2% before it). A new replay
# feature landing without property/oracle coverage fails here. The
# columnar trace store PR added internal/trace at a 90% floor (the
# corruption matrix + round-trip suites sit well above it); the
# interprocedural-analysis PR added internal/analysis at 90% (the
# dependence-map corruption matrix and interproc dataflow tests hold
# it above 92%). The incremental re-patching PR added
# internal/core/codepatch at 90% (the repatch property/metamorphic
# suite and fuzz corpus hold it above 92%).
cover:
	@set -e; \
	for spec in internal/sim:92.0 internal/sessions:99.0 internal/trace:90.0 internal/analysis:90.0 internal/core/codepatch:90.0; do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg/ | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: $$pkg: no coverage output (test failure?)"; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $$floor%)"; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit (p+0 < f+0) ? 1 : 0 }' || { \
			echo "cover: $$pkg coverage $$pct% fell below floor $$floor%"; exit 1; }; \
	done

# Replay-core regression gate: re-measures the phase-2 replay
# benchmarks against BENCH_replay_core.json and fails on a >10% ns/op
# regression or allocation growth (the static half — the committed
# numbers must show the flat rewrite's >=2x time / >=5x alloc win —
# runs inside the ordinary test suite). Like obsv-bench, wall-clock is
# gated at baseline*(1+REPLAY_SLACK); the shared-vCPU CI host class is
# noisy, so CI runs with the looser default below. Override on a quiet
# dedicated host: make replay-gate REPLAY_SLACK=0.10
REPLAY_SLACK ?= 0.25
replay-gate:
	EDB_REPLAY_BENCH=1 EDB_REPLAY_BENCH_SLACK=$(REPLAY_SLACK) $(GO) test -run TestReplayBenchGate -count=1 -v .

# Trace-store regression gate: re-measures both from-file replay paths
# (v2 read + in-memory sequential vs v3 streamed block-skip) on the
# sparse bps monitor set and fails unless the streamed path still runs
# at >=2x the v2 events/sec live, and within TRACE_SLACK of the
# committed BENCH_trace_store.json ns/op. The 2x ratio takes no slack
# (both sides are measured back-to-back on the same host); the
# regression check uses the same noisy-CI default as replay-gate.
# Regenerate the baseline with: EDB_REGEN_TRACE_BENCH=1 go test -run
# TestTraceBenchGate -count=1 .
TRACE_SLACK ?= 0.25
trace-gate:
	EDB_TRACE_BENCH=1 EDB_TRACE_BENCH_SLACK=$(TRACE_SLACK) $(GO) test -run TestTraceBenchGate -count=1 -v .

# Serving soak gate: boots a real edb-serve on a loopback listener and
# drives >=1000 hash-first submissions from 32 concurrent clients
# across 8 tenants and 8 distinct specs. Survivability is absolute
# (zero failed requests, zero result-hash inconsistencies, leak-free
# drain — no slack); only the p99 latency check takes SERVE_SLACK
# against BENCH_serve.json, with the loose CI default below because
# millisecond-scale HTTP p99s on a shared vCPU swing with scheduler
# noise. Override on a quiet dedicated host: make serve-gate
# SERVE_SLACK=0.25. Regenerate the baseline with:
# EDB_REGEN_SERVE_BENCH=1 go test -run TestServeBenchGate -count=1 .
SERVE_SLACK ?= 1.00
serve-gate:
	EDB_SERVE_BENCH=1 EDB_SERVE_BENCH_SLACK=$(SERVE_SLACK) $(GO) test -run TestServeBenchGate -count=1 -v .

# Incremental re-patching gate: re-measures a watch-set churn cycle and
# a live store rewrite against a stop-the-world rebuild (recompile,
# repatch, reverify, replay back to the pause point) on the fact-laden
# bps image, and fails unless both incremental paths still beat the
# rebuild by >=3x live and sit within REPATCH_SLACK of the committed
# BENCH_repatch.json ns/op. The 3x ratio takes no slack (both sides are
# measured back-to-back on the same host); the static half — the
# committed baseline must itself document the >=3x win — runs inside
# the ordinary test suite. Regenerate the baseline with:
# EDB_REGEN_REPATCH_BENCH=1 go test -run TestRepatchBenchGate -count=1 .
REPATCH_SLACK ?= 0.25
repatch-gate:
	EDB_REPATCH_BENCH=1 EDB_REPATCH_BENCH_SLACK=$(REPATCH_SLACK) $(GO) test -run TestRepatchBenchGate -count=1 -v .

# Observability disabled-path gate: re-measures the pipeline
# benchmarks with observation off against BENCH_pipeline.json and
# fails on regression. Allocation counts are the precision gate
# (deterministic per Go version; compared at ~0% tolerance — the
# disabled path must be a nil check, so a single stray allocation
# fails). Wall-clock is gated at baseline*(1+OBSV_SLACK): the test's
# strict default is 5%, but the shared-vCPU CI host class shows ±17%
# run-to-run noise, so CI runs with OBSV_SLACK=0.25 — tight enough to
# catch a real disabled-path slowdown, loose enough not to flake.
# Override on a quiet dedicated host: make obsv-bench OBSV_SLACK=0.05
OBSV_SLACK ?= 0.25
obsv-bench:
	EDB_OBSV_BENCH=1 EDB_OBSV_BENCH_SLACK=$(OBSV_SLACK) $(GO) test -run TestObsvBenchGate -count=1 -v .
	$(GO) test -run '^$$' -bench 'BenchmarkSpanDisabled|BenchmarkEventDisabled|BenchmarkMetricsDisabled' -benchmem ./internal/obsv/

# Regenerate the parallel-pipeline baseline recorded in
# BENCH_pipeline.json / EXPERIMENTS.md.
bench-pipeline:
	$(GO) test -bench 'BenchmarkSimReplay|BenchmarkExpRun' -benchmem -run '^$$' .

# Regenerate the flat replay-core baseline recorded in
# BENCH_replay_core.json: the end-to-end engine matrix (with and
# without a shared prepass) plus the white-box prepass/replay-core
# split.
bench-replay:
	$(GO) test -bench 'BenchmarkSimReplay' -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkPrepass$$|BenchmarkReplayCore' -benchmem -run '^$$' ./internal/sim/

# Regenerate the trace-store comparison recorded in
# BENCH_trace_store.json / EXPERIMENTS.md (the committed baseline file
# itself is rewritten by EDB_REGEN_TRACE_BENCH=1, not by this target).
bench-trace:
	$(GO) test -bench 'BenchmarkTraceReplayFile|BenchmarkTraceCodec' -benchmem -run '^$$' .

# Regenerate the CodePatch check-optimisation ablation recorded in
# BENCH_codepatch_opt.json.
bench-codepatch-opt:
	$(GO) test -bench 'BenchmarkLoopHoistAblation' -benchmem -run '^$$' .
