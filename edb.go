// Package edb is a faithful reproduction, as a Go library, of the
// system described in:
//
//	Robert Wahbe. Efficient Data Breakpoints.
//	ASPLOS V, October 1992.
//
// It provides everything the paper describes, built on a simulated
// 40 MHz SPARCstation-2-class machine with its own compiler toolchain:
//
//   - A write monitor service (WMS) with the paper's §2 interface —
//     InstallMonitor / RemoveMonitor / MonitorNotification — in all four
//     §3 implementation strategies: NativeHardware monitor registers,
//     VirtualMemory page protection, TrapPatch, and CodePatch.
//   - A source-level debugger (Session) that sets named data breakpoints
//     on compiled mini-C programs over any strategy.
//   - The paper's full two-phase simulation experiment: event-trace
//     generation over five synthesised benchmark workloads, monitor
//     session discovery, a one-pass counting simulator, the §7
//     analytical models, and renderers for Tables 1–4 and Figures 7–9.
//
// Quick start — watch a global under the paper's preferred strategy:
//
//	session, _ := edb.Launch(src, edb.CodePatch, 0)
//	session.BreakOnData("counter")
//	session.Run(10_000_000)
//	fmt.Print(session.Report())
//
// Reproduce the paper's evaluation:
//
//	results, _ := edb.RunExperiment(edb.ExperimentConfig{})
//	edb.WriteReport(os.Stdout, results)
//
// # Observability
//
// Every pipeline phase can stream spans, metrics, and progress
// callbacks with zero cost when disabled:
//
//	tr, ms := edb.NewTracer(0), edb.NewMetrics()
//	cfg := edb.ExperimentConfig{Tracer: tr, Metrics: ms}
//	results, _ := edb.RunExperimentContext(ctx, cfg)
//	tr.WriteChromeTrace(f)         // load in Perfetto
//	ms.WritePrometheus(os.Stdout)  // Prometheus text format
//
// # Errors
//
// Failures carry typed errors; use errors.As instead of string
// matching:
//
//	results, err := edb.RunExperiment(cfg)
//	var re *edb.RunError
//	if errors.As(err, &re) {
//		for _, f := range re.Failures {
//			log.Printf("%s failed: %v", f.Program, f.Err)
//		}
//	}
//	var we *edb.WorkerError
//	if errors.As(err, &we) {
//		log.Printf("panic in %s:\n%s", we.Program, we.Stack)
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package edb

import (
	"context"
	"io"

	"edb/internal/arch"
	"edb/internal/calib"
	"edb/internal/debug"
	"edb/internal/exp"
	"edb/internal/fault"
	"edb/internal/model"
	"edb/internal/obsv"
	"edb/internal/progs"
	"edb/internal/report"
)

// Addr is a virtual address in the simulated 32-bit machine.
type Addr = arch.Addr

// Range is a half-open address range [BA, EA) — the paper's write
// monitor descriptor.
type Range = arch.Range

// Strategy selects a WMS implementation.
type Strategy = debug.Strategy

// The four strategies of §3/§7, plus the statically optimized CodePatch
// variant.
const (
	// NativeHardware uses simulated monitor registers (four of them, as
	// on 1992 hardware); installs beyond the register budget fail.
	NativeHardware = debug.NativeHardware
	// VirtualMemory write-protects pages holding monitors and fields the
	// resulting faults.
	VirtualMemory = debug.VirtualMemory
	// TrapPatch replaces every store with a trap at compile time.
	TrapPatch = debug.TrapPatch
	// CodePatch inserts an inline check call before every store at
	// compile time — the paper's recommended strategy.
	CodePatch = debug.CodePatch
	// CodePatchOpt is CodePatch with the static check-optimization plan:
	// dominance-based check elimination plus §9's loop optimization
	// (preliminary checks hoisted to loop preheaders). Delivers the same
	// notifications as CodePatch at lower per-write cost.
	CodePatchOpt = debug.CodePatchOpt
)

// Strategies lists all five.
var Strategies = debug.Strategies

// Session is a live debugging session over a compiled mini-C program.
type Session = debug.Session

// Breakpoint is an installed data breakpoint.
type Breakpoint = debug.Breakpoint

// Hit is a recorded data-breakpoint notification.
type Hit = debug.Hit

// Page sizes for the VirtualMemory strategy.
const (
	PageSize4K = arch.PageSize4K
	PageSize8K = arch.PageSize8K
)

// Launch compiles a mini-C program, applies the strategy's compile-time
// instrumentation, and returns a ready debugging session. pageSize is
// PageSize4K or PageSize8K (0 selects 4K) and matters only for
// VirtualMemory.
//
// Launch is the positional form kept for compatibility; new code
// should prefer LaunchOpts, which replaces the magic pageSize argument
// with functional options.
func Launch(src string, strat Strategy, pageSize int) (*Session, error) {
	return LaunchOpts(src, strat, WithPageSize(pageSize))
}

// Option configures LaunchOpts.
type Option func(*debug.LaunchConfig)

// WithPageSize sets the machine page size (PageSize4K or PageSize8K;
// 0 selects 4K). It matters only for the VirtualMemory strategy.
func WithPageSize(n int) Option {
	return func(c *debug.LaunchConfig) { c.PageSize = n }
}

// WithObserver streams launch and run spans (compile, patch, assemble,
// attach, run) into tr. A nil tracer is the disabled path and costs
// nothing.
func WithObserver(tr *Tracer) Option {
	return func(c *debug.LaunchConfig) { c.Obs = tr }
}

// WithFaultPlan activates a chaos-injection plan (process-wide; see
// internal/fault) before the launch pipeline runs, so the plan's rules
// apply to this session's compile and execution.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *debug.LaunchConfig) { c.FaultPlan = p }
}

// LaunchOpts is Launch with functional options:
//
//	session, err := edb.LaunchOpts(src, edb.VirtualMemory,
//		edb.WithPageSize(edb.PageSize8K),
//		edb.WithObserver(tr))
//
// With no options it is identical to Launch(src, strat, 0).
func LaunchOpts(src string, strat Strategy, opts ...Option) (*Session, error) {
	var c debug.LaunchConfig
	for _, opt := range opts {
		opt(&c)
	}
	return debug.LaunchWith(src, strat, c)
}

// Timings is a timing profile for the analytical models (Table 2).
type Timings = model.Timings

// PaperTimings is the paper's published SPARCstation 2 profile.
var PaperTimings = model.Paper

// ExperimentConfig parameterises a full reproduction run. Workers
// bounds how many benchmarks are compiled, traced, and analysed
// concurrently (0 = GOMAXPROCS); results — float summaries included —
// are bit-identical for every worker count.
type ExperimentConfig = exp.Config

// ProgramResult is one benchmark's aggregated experiment output.
type ProgramResult = exp.ProgramResult

// RunExperiment executes the paper's complete evaluation pipeline over
// the five benchmark workloads (or the subset configured). Benchmarks
// fan out over a bounded worker pool (ExperimentConfig.Workers), and
// compile + trace artifacts are cached per (benchmark, scale) within
// the process, so repeated runs — alternative timing profiles, REPL
// sessions, benchmark harnesses — skip phase 1 entirely.
func RunExperiment(cfg ExperimentConfig) ([]*ProgramResult, error) {
	return exp.Run(cfg)
}

// RunExperimentContext is RunExperiment under an explicit context —
// the context-first form that replaces the deprecated
// ExperimentConfig.Context field. Cancellation stops claiming new
// benchmarks and interrupts retry backoff; benchmarks already past
// their last context check run to completion.
func RunExperimentContext(ctx context.Context, cfg ExperimentConfig) ([]*ProgramResult, error) {
	return exp.RunContext(ctx, cfg)
}

// ResetExperimentCache drops the per-process compile/trace cache used
// by RunExperiment. Long-running hosts can call this to bound memory;
// it is never required for correctness.
func ResetExperimentCache() { exp.ResetCache() }

// WriteReport renders every table and figure of §8 to w.
func WriteReport(w io.Writer, results []*ProgramResult) {
	report.All(w, results, model.Paper)
}

// WriteReportWithTimings renders the report under an alternative timing
// profile's Table 2.
func WriteReportWithTimings(w io.Writer, results []*ProgramResult, t Timings) {
	report.All(w, results, t)
}

// BenchmarkNames lists the five workload names in paper order
// ("gcc", "ctex", "spice", "qcd", "bps").
func BenchmarkNames() []string { return progs.Names() }

// BenchmarkSource returns the generated mini-C source of a benchmark at
// the given scale, for inspection or standalone compilation.
func BenchmarkSource(name string, scale int) (string, error) {
	p, err := progs.ByName(name, scale)
	if err != nil {
		return "", err
	}
	return p.Source, nil
}

// HostTimings holds host-measured software timing variables.
type HostTimings = calib.HostTimings

// MeasureHostTimings reruns the paper's Appendix A.5 protocol against
// this library's WMS data structure on the host CPU.
func MeasureHostTimings() HostTimings { return calib.Measure() }

// HostProfile builds a timing profile from host measurements, scaling
// the paper's OS/hardware service costs by serviceSpeedup.
func HostProfile(h HostTimings, serviceSpeedup float64) Timings {
	return calib.HostProfile(h, serviceSpeedup)
}

// Tracer is the span/event collector of the observability layer: a
// ring-buffered, allocation-conscious recorder of pipeline phases.
// Wire one into ExperimentConfig.Tracer or WithObserver, then export
// with WriteText (human timeline), WriteChromeTrace (Perfetto), or
// WriteJSONL. A nil *Tracer is valid everywhere and records nothing.
type Tracer = obsv.Tracer

// NewTracer builds a span collector holding up to capacity records
// (0 = a generous default); when full, the oldest records are dropped
// and counted.
func NewTracer(capacity int) *Tracer { return obsv.NewTracer(capacity) }

// Span is one open span returned by Tracer.StartSpan.
type Span = obsv.Span

// SpanRecord is one completed span or instant event in a Tracer.
type SpanRecord = obsv.Record

// Metrics is the counter/gauge/histogram registry of the observability
// layer. Wire one into ExperimentConfig.Metrics, then export with
// WritePrometheus or read programmatically via Snapshot.
type Metrics = obsv.Metrics

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obsv.NewMetrics() }

// MetricsSnapshot is a point-in-time copy of every registered metric,
// from Metrics.Snapshot.
type MetricsSnapshot = obsv.Snapshot

// Observer receives live pipeline progress callbacks (phase
// started/finished, replay events/sec, N-of-M benchmarks finished).
// Wire an implementation into ExperimentConfig.Observer.
type Observer = exp.Observer

// WorkerError is a benchmark worker panic contained and converted into
// an error. Recover it with errors.As:
//
//	var we *edb.WorkerError
//	if errors.As(err, &we) { log.Printf("panic in %s", we.Program) }
type WorkerError = exp.WorkerError

// RunError aggregates per-benchmark failures from a KeepGoing
// experiment run. Recover it with errors.As:
//
//	var re *edb.RunError
//	if errors.As(err, &re) { ... re.Failures ... }
type RunError = exp.RunError

// ProgramFailure names one benchmark's terminal error inside a
// RunError.
type ProgramFailure = exp.ProgramFailure

// FaultPlan is a deterministic chaos-injection plan (see
// internal/fault); activate one per process via WithFaultPlan or
// fault.Activate to exercise failure paths.
type FaultPlan = fault.Plan

// FaultRule is one site/key/kind rule inside a FaultPlan.
type FaultRule = fault.Rule

// NewFaultPlan builds a chaos plan from a seed and rules.
func NewFaultPlan(seed int64, rules ...FaultRule) *FaultPlan {
	return fault.NewPlan(seed, rules...)
}

// BreakState describes why Session.RunUntilBreak returned.
type BreakState = debug.BreakState

// Break states: a data breakpoint fired (the machine is suspended right
// after the monitored store), the program exited, or the instruction
// budget ran out.
const (
	Broke     = debug.Broke
	Exited    = debug.Exited
	OutOfFuel = debug.OutOfFuel
)
